// Distributed-serving microbenchmark: shard scaling and loss tolerance.
//
// Forks N m3d-style shard daemons (EstimationService + SocketServer on a
// unix socket each), scatter-gathers cold queries through an in-process
// Router, and records:
//
//   scaling: cold-query throughput/latency at 1, 2, ... N shards over the
//            scaled "large" fat tree (same shape knobs as table5:
//            M3_LARGE_PODS / M3_LARGE_RACKS / M3_LARGE_HOSTS; workload
//            scaled by M3_SCALE)
//   chaos:   p99 and degradation counts with one shard SIGKILLed a third
//            of the way into the load — every query must still be
//            answered (ok or degraded, never failed)
//
// Emits JSON on stdout; the checked-in snapshot lives in
// BENCH_distributed.json.
//
//   ./micro_distributed [queries_per_point] [flows_per_query] [paths] [shards]
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "serve/router.h"
#include "serve/server.h"
#include "serve/service.h"
#include "topo/fat_tree.h"
#include "util/socket.h"
#include "workload/generator.h"
#include "workload/size_dist.h"

namespace m3::serve {
namespace {

using bench::EnvInt;
using Clock = std::chrono::steady_clock;

volatile sig_atomic_t g_shard_stop = 0;
void OnShardSignal(int) { g_shard_stop = 1; }

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double PercentileMs(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(v.size()) - 1,
                       p / 100.0 * static_cast<double>(v.size())));
  return v[idx] * 1000.0;
}

M3ModelConfig BenchModel() {
  // Full-size dims (weights are random — this bench measures serving cost,
  // not accuracy): per-slot inference has to dominate the query's shared
  // prep, as it does in production, or the scaling numbers mean nothing.
  return M3ModelConfig();
}

/// Child body: one shard daemon. Never returns to the caller's main.
[[noreturn]] void RunShard(const std::string& ckpt, const std::string& sock) {
  signal(SIGTERM, OnShardSignal);
  signal(SIGINT, SIG_IGN);  // ^C on the bench must not race the parent's teardown
  ServiceOptions so;
  so.model_config = BenchModel();
  so.num_workers = 2;
  so.threads_per_query = 1;
  EstimationService service(so);
  if (!service.ReloadModel(ckpt).ok()) _exit(1);
  if (!service.Start().ok()) _exit(1);
  SocketServer server(service);
  if (!server.Start(sock).ok()) _exit(1);
  while (!g_shard_stop) usleep(20 * 1000);
  server.Stop();
  service.Stop();
  _exit(0);
}

/// The table5-shaped "large" topology, scaled down by default so the bench
/// completes in minutes (M3_LARGE_PODS=8 M3_LARGE_RACKS=24 M3_LARGE_HOSTS=16
/// reproduces the paper's 384-rack fabric shape).
FatTreeConfig LargeTopo() {
  FatTreeConfig cfg = FatTreeConfig::Large(2.0);
  cfg.pods = EnvInt("M3_LARGE_PODS", 2);
  cfg.racks_per_pod = EnvInt("M3_LARGE_RACKS", 8);
  cfg.hosts_per_rack = EnvInt("M3_LARGE_HOSTS", 4);
  return cfg;
}

QueryRequest MakeQuery(const FatTree& ft, int flows_per_query, int paths,
                       std::uint64_t wl_seed) {
  const auto tm = TrafficMatrix::MatrixB(ft.num_racks(), ft.config().racks_per_pod);
  const auto sizes = MakeWebServer();
  WorkloadSpec wspec;
  wspec.num_flows = flows_per_query;
  wspec.seed = wl_seed;
  const std::vector<Flow> flows = GenerateWorkload(ft, tm, *sizes, wspec).flows;
  QueryRequest req;
  req.oversub = 2.0;
  const FatTreeConfig& tc = ft.config();
  req.topo.pods = tc.pods;
  req.topo.racks_per_pod = tc.racks_per_pod;
  req.topo.hosts_per_rack = tc.hosts_per_rack;
  req.topo.fabric_per_pod = tc.fabric_per_pod;
  req.topo.spines_per_plane = tc.spines_per_plane;
  req.num_paths = paths;
  req.flows.reserve(flows.size());
  for (const Flow& f : flows) {
    WireFlow wf;
    wf.id = f.id;
    wf.src_host = ft.HostIndexOf(f.src);
    wf.dst_host = ft.HostIndexOf(f.dst);
    wf.size = f.size;
    wf.arrival = f.arrival;
    wf.priority = f.priority;
    req.flows.push_back(wf);
  }
  return req;
}

RouterOptions FleetOptions(const std::vector<std::string>& socks, std::size_t n) {
  RouterOptions ro;
  ro.shards.assign(socks.begin(), socks.begin() + static_cast<std::ptrdiff_t>(n));
  ro.replicas = 2;
  ro.health_interval_seconds = 0.2;
  ro.retry_backoff_ms = 10.0;
  ro.breaker.cooloff_seconds = 1.0;
  ro.fallback_threads = 0;  // all cores: placement hashing must not bottleneck
  return ro;
}

struct Point {
  int shards = 0;
  double qps = 0.0, p50_ms = 0.0, p99_ms = 0.0;
  int ok = 0, degraded = 0, failed = 0;
};

Point RunLoad(Router& router, const std::vector<QueryRequest>& queries) {
  Point pt;
  std::vector<double> lat;
  lat.reserve(queries.size());
  const auto t0 = Clock::now();
  for (const QueryRequest& q : queries) {
    const auto q0 = Clock::now();
    const QueryResponse resp = router.Query(q);
    lat.push_back(SecondsSince(q0));
    if (resp.status.ok()) {
      pt.ok++;
    } else if (IsAnsweredCode(resp.status.code())) {
      pt.degraded++;
    } else {
      pt.failed++;
    }
  }
  const double wall = SecondsSince(t0);
  pt.qps = static_cast<double>(queries.size()) / wall;
  pt.p50_ms = PercentileMs(lat, 50);
  pt.p99_ms = PercentileMs(lat, 99);
  return pt;
}

}  // namespace
}  // namespace m3::serve

int main(int argc, char** argv) {
  using namespace m3;
  using namespace m3::serve;

  const int queries = argc > 1 ? std::atoi(argv[1]) : 10;
  const int flows_per_query = argc > 2 ? std::atoi(argv[2]) : 1200 * bench::Scale();
  const int paths = argc > 3 ? std::atoi(argv[3]) : 24;
  const int num_shards = argc > 4 ? std::atoi(argv[4]) : 4;
  if (queries < 1 || flows_per_query < 1 || paths < 2 || num_shards < 2 ||
      num_shards > 64) {
    std::fprintf(stderr,
                 "usage: micro_distributed [queries>=1] [flows>=1] [paths>=2] "
                 "[shards in 2..64]\n");
    return 2;
  }

  const std::string tag = "/tmp/m3_distributed_bench." + std::to_string(getpid());
  const std::string ckpt = tag + ".ckpt";
  {
    M3Model model(BenchModel());
    model.Save(ckpt);
  }

  // Fork the whole fleet before any parent threads exist (routers come
  // later): forking a multithreaded process can strand locked mutexes in
  // the child.
  std::vector<std::string> socks;
  std::vector<pid_t> pids;
  std::fflush(stdout);
  for (int i = 0; i < num_shards; ++i) {
    const std::string sock = tag + ".shard" + std::to_string(i) + ".sock";
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("fork");
      return 7;
    }
    if (pid == 0) RunShard(ckpt, sock);  // never returns
    socks.push_back(sock);
    pids.push_back(pid);
  }
  const auto cleanup = [&](bool kill_all) {
    for (std::size_t i = 0; i < pids.size(); ++i) {
      if (pids[i] > 0) kill(pids[i], kill_all ? SIGKILL : SIGTERM);
    }
    for (std::size_t i = 0; i < pids.size(); ++i) {
      if (pids[i] > 0) waitpid(pids[i], nullptr, 0);
    }
    for (const std::string& s : socks) unlink(s.c_str());
    unlink(ckpt.c_str());
  };

  // Wait until every shard accepts connections.
  for (const std::string& s : socks) {
    Endpoint ep;
    ep.kind = Endpoint::Kind::kUnix;
    ep.path = s;
    const auto t0 = Clock::now();
    for (;;) {
      if (ConnectEndpoint(ep, 0.2).ok()) break;
      if (SecondsSince(t0) > 15.0) {
        std::fprintf(stderr, "micro_distributed: shard at %s never came up\n", s.c_str());
        cleanup(true);
        return 7;
      }
      usleep(50 * 1000);
    }
  }

  const FatTree ft(LargeTopo());
  std::printf("# topology: %d racks, %d hosts; %d flows x %d paths per query\n",
              ft.num_racks(), ft.num_hosts(), flows_per_query, paths);
  std::fflush(stdout);

  // Scaling points: 1, 2, 4, ... up to the fleet size (always including it).
  std::vector<int> points;
  for (int n = 1; n < num_shards; n *= 2) points.push_back(n);
  points.push_back(num_shards);

  // Distinct workload seeds everywhere: every query is a cold compute (no
  // shard-side cache hits flattering the bigger fleets).
  std::uint64_t seed = 7000;
  std::vector<Point> scaling;
  for (int n : points) {
    std::vector<QueryRequest> qs;
    for (int i = 0; i < queries; ++i) {
      qs.push_back(MakeQuery(ft, flows_per_query, paths, seed++));
    }
    Router router(FleetOptions(socks, static_cast<std::size_t>(n)));
    if (Status st = router.Start(); !st.ok()) {
      std::fprintf(stderr, "micro_distributed: %s\n", st.ToString().c_str());
      cleanup(true);
      return 7;
    }
    Point pt = RunLoad(router, qs);
    pt.shards = n;
    router.Stop();
    scaling.push_back(pt);
    std::printf("# %d shard(s): %.2f qps, p99 %.1f ms (%d ok, %d degraded, %d failed)\n",
                pt.shards, pt.qps, pt.p99_ms, pt.ok, pt.degraded, pt.failed);
    std::fflush(stdout);
  }

  // Chaos point: full fleet, SIGKILL one shard a third of the way in. The
  // router must keep answering every query (rerouted or flowSim fallback).
  std::vector<QueryRequest> chaos_qs;
  const int chaos_queries = std::max(queries * 2, 6);
  for (int i = 0; i < chaos_queries; ++i) {
    chaos_qs.push_back(MakeQuery(ft, flows_per_query, paths, seed++));
  }
  Point chaos;
  {
    Router router(FleetOptions(socks, socks.size()));
    if (Status st = router.Start(); !st.ok()) {
      std::fprintf(stderr, "micro_distributed: %s\n", st.ToString().c_str());
      cleanup(true);
      return 7;
    }
    std::vector<double> lat;
    const int kill_at = chaos_queries / 3;
    const auto t0 = Clock::now();
    for (int i = 0; i < chaos_queries; ++i) {
      if (i == kill_at) {
        kill(pids.back(), SIGKILL);
        waitpid(pids.back(), nullptr, 0);
        pids.back() = -1;
      }
      const auto q0 = Clock::now();
      const QueryResponse resp = router.Query(chaos_qs[static_cast<std::size_t>(i)]);
      lat.push_back(SecondsSince(q0));
      if (resp.status.ok()) {
        chaos.ok++;
      } else if (IsAnsweredCode(resp.status.code())) {
        chaos.degraded++;
      } else {
        chaos.failed++;
      }
    }
    chaos.shards = num_shards;
    chaos.qps = static_cast<double>(chaos_queries) / SecondsSince(t0);
    chaos.p50_ms = PercentileMs(lat, 50);
    chaos.p99_ms = PercentileMs(lat, 99);
    router.Stop();
  }
  std::printf("# chaos (%d shards, 1 SIGKILLed): p99 %.1f ms (%d ok, %d degraded, %d failed)\n",
              chaos.shards, chaos.p99_ms, chaos.ok, chaos.degraded, chaos.failed);

  cleanup(false);

  std::printf("{\n");
  std::printf("  \"bench\": \"distributed\",\n");
  // cores matters for reading the scaling points: shards on one box share
  // the CPU, so the speedup ceiling is min(shards, cores) — on a 1-core
  // host the 1->N points isolate pure scatter-gather overhead instead.
  std::printf("  \"config\": {\"queries_per_point\": %d, \"flows_per_query\": %d, "
              "\"paths\": %d, \"shards\": %d, \"racks\": %d, \"hosts\": %d, "
              "\"cores\": %u},\n",
              queries, flows_per_query, paths, num_shards, ft.num_racks(), ft.num_hosts(),
              std::thread::hardware_concurrency());
  std::printf("  \"scaling\": [\n");
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const Point& p = scaling[i];
    std::printf("    {\"shards\": %d, \"qps\": %.2f, \"p50_ms\": %.2f, \"p99_ms\": %.2f, "
                "\"ok\": %d, \"degraded\": %d, \"failed\": %d}%s\n",
                p.shards, p.qps, p.p50_ms, p.p99_ms, p.ok, p.degraded, p.failed,
                i + 1 < scaling.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"chaos_one_shard_killed\": {\"shards\": %d, \"qps\": %.2f, "
              "\"p50_ms\": %.2f, \"p99_ms\": %.2f, \"ok\": %d, \"degraded\": %d, "
              "\"failed\": %d}\n",
              chaos.shards, chaos.qps, chaos.p50_ms, chaos.p99_ms, chaos.ok,
              chaos.degraded, chaos.failed);
  std::printf("}\n");

  // The contract this bench tracks: shard loss degrades, never fails.
  return chaos.failed == 0 ? 0 : 1;
}
