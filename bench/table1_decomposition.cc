// Table 1: p99 FCT slowdown and runtime of full packet simulation ("ns-3"),
// Parsimon (link-level decomposition), and ns-3-path (path-level
// decomposition) across the three production mixes.
//
// Paper reference (10M flows, 256 hosts):
//   Mix 1: ns-3 4.565 / Parsimon 5.023 / ns-3-path 4.527
//   Mix 2: ns-3 4.602 / Parsimon 4.893 / ns-3-path 4.504
//   Mix 3: ns-3 13.891 / Parsimon 15.24 / ns-3-path 13.07
// The reproduction's claim is the ordering: ns-3-path tracks ns-3 closely
// (~2% error) while Parsimon deviates more, at much lower runtime.
#include "bench/common.h"
#include "pktsim/simulator.h"

using namespace m3;
using namespace m3::bench;

int main() {
  std::printf("=== Table 1: decomposition accuracy (scaled: %d flows/mix) ===\n",
              DefaultFlows());
  const int paths = DefaultPaths();
  std::printf("%-6s %-14s %8s %8s | %10s %10s %10s | %8s %8s %8s\n", "mix", "workload",
              "oversub", "load", "ns3.p99", "pars.p99", "path.p99", "ns3.s", "pars.s",
              "path.s");

  const struct {
    double paper_ns3, paper_pars, paper_path;
  } paper[3] = {{4.565, 5.023, 4.527}, {4.602, 4.893, 4.504}, {13.891, 15.24, 13.07}};

  int i = 0;
  for (const Mix& mix : Table1Mixes()) {
    BuiltMix built = BuildMix(mix, DefaultFlows());

    WallTimer t_full;
    const auto truth = RunPacketSim(built.ft->topo(), built.wl.flows, built.cfg);
    const double full_s = t_full.Seconds();
    const double p99_true = P99Slowdown(truth);

    WallTimer t_pars;
    ParsimonOptions popts;
    popts.cfg = built.cfg;
    const auto pars = RunParsimon(built.ft->topo(), built.wl.flows, popts);
    const double pars_s = t_pars.Seconds();
    const double p99_pars = P99Slowdown(pars);

    M3Options opts;
    opts.num_paths = paths;
    const NetworkEstimate path_est = RunNs3Path(built.ft->topo(), built.wl.flows, built.cfg, opts);
    const double p99_path = path_est.CombinedP99();

    std::printf("%-6s %-14s %7.0f:1 %7.0f%% | %10.3f %10.3f %10.3f | %7.1fs %7.1fs %7.1fs\n",
                mix.name.c_str(), mix.workload.c_str(), mix.oversub, 100 * mix.max_load,
                p99_true, p99_pars, p99_path, full_s, pars_s, path_est.wall_seconds);
    std::printf("       paper(10M flows):        ns3=%.3f  parsimon=%.3f  ns3-path=%.3f\n",
                paper[i].paper_ns3, paper[i].paper_pars, paper[i].paper_path);
    std::printf("       |err| vs ns-3:           parsimon=%.1f%%  ns3-path=%.1f%%\n",
                AbsErrPct(p99_pars, p99_true), AbsErrPct(p99_path, p99_true));
    std::fflush(stdout);
    ++i;
  }
  std::printf("claim: ns-3-path |err| < parsimon |err| on average (paper: 2%% vs 9%%)\n");
  return 0;
}
