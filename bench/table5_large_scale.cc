// Table 5 + Figure 12: large-scale evaluation. A bigger fat tree (scaled
// from the paper's 384-rack/6144-host fabric), traffic matrix B, 2:1
// oversubscription, WebServer at sigma=2 and 50% max load, with two initial
// window sizes: one below and one above the maximum BDP.
//
// Paper reference (6144 hosts, 11.4M flows, DCTCP-family config):
//   initW=10KB: ns-3 p99 2.05; Parsimon 4.29 (+109%); m3 2.10 (+2.4%)
//   initW=18KB: ns-3 p99 2.44; Parsimon 2.73 (+11.9%); m3 2.30 (-5.7%)
// Claim: Parsimon over-counts window-limited delay (sums per-link
// slowdowns); m3 learns the window effect. Runtime: m3 < Parsimon << ns-3.
#include "bench/common.h"
#include "pktsim/simulator.h"

using namespace m3;
using namespace m3::bench;

int main() {
  // Scaled "large" topology: same 3-tier shape, fewer pods by default so
  // the bench completes on one CPU. M3_LARGE_PODS=8 reproduces the paper's
  // 384-rack fabric shape.
  FatTreeConfig cfg_topo = FatTreeConfig::Large(2.0);
  cfg_topo.pods = EnvInt("M3_LARGE_PODS", 2);
  cfg_topo.racks_per_pod = EnvInt("M3_LARGE_RACKS", 24);
  cfg_topo.hosts_per_rack = EnvInt("M3_LARGE_HOSTS", 8);
  const FatTree ft(cfg_topo);
  std::printf("=== Table 5 / Fig 12: large-scale (%d racks, %d hosts) ===\n", ft.num_racks(),
              ft.num_hosts());
  M3Model& model = DefaultModel();

  const auto tm = TrafficMatrix::MatrixB(ft.num_racks(), ft.config().racks_per_pod);
  const auto sizes = MakeWebServer();

  const struct {
    Bytes window;
    double paper_ns3, paper_pars_err, paper_m3_err;
  } rows[2] = {{10 * kKB, 2.05, 109.0, 2.44}, {18 * kKB, 2.44, 11.9, 5.74}};

  for (const auto& row : rows) {
    WorkloadSpec wspec;
    wspec.num_flows = DefaultFlows() * 2;
    wspec.max_load = 0.5;
    wspec.burstiness_sigma = 2.0;
    wspec.seed = 1212;
    const auto wl = GenerateWorkload(ft, tm, *sizes, wspec);

    NetConfig cfg;
    cfg.init_window = row.window;

    WallTimer t_full;
    const auto truth = RunPacketSim(ft.topo(), wl.flows, cfg);
    const double full_s = t_full.Seconds();
    const auto gt = SummarizeGroundTruth(truth);
    const double p99_true = gt.CombinedP99();

    WallTimer t_pars;
    ParsimonOptions popts;
    popts.cfg = cfg;
    const auto pars = RunParsimon(ft.topo(), wl.flows, popts);
    const double pars_s = t_pars.Seconds();
    const double p99_pars = P99Slowdown(pars);

    M3Options mopts;
    mopts.num_paths = DefaultPaths();
    const NetworkEstimate est = RunM3(ft.topo(), wl.flows, cfg, model, mopts);

    std::printf("\ninitW=%lldKB (paper ns-3 p99=%.2f):\n", static_cast<long long>(row.window / kKB),
                row.paper_ns3);
    std::printf("  %-10s %10s %10s %10s\n", "method", "p99", "err", "time");
    std::printf("  %-10s %10.3f %10s %9.1fs\n", "full-sim", p99_true, "-", full_s);
    std::printf("  %-10s %10.3f %+9.1f%% %9.1fs   (paper err %+.1f%%)\n", "parsimon",
                p99_pars, 100 * RelativeError(p99_pars, p99_true), pars_s, row.paper_pars_err);
    std::printf("  %-10s %10.3f %+9.1f%% %9.1fs\n", "m3", est.CombinedP99(),
                100 * RelativeError(est.CombinedP99(), p99_true), est.wall_seconds);

    // Fig 12: per-bucket distributions at selected percentiles.
    std::printf("  Fig12 per-bucket p50/p99 (truth | m3 | parsimon):\n");
    const auto pars_sum = SummarizeGroundTruth(pars);
    for (int b = 0; b < kNumOutputBuckets; ++b) {
      if (gt.bucket_pct[static_cast<std::size_t>(b)].empty()) continue;
      const auto& tb = gt.bucket_pct[static_cast<std::size_t>(b)];
      const auto& mb = est.bucket_pct[static_cast<std::size_t>(b)];
      const auto& pb = pars_sum.bucket_pct[static_cast<std::size_t>(b)];
      std::printf("    %-12s %6.2f/%6.2f | %6.2f/%6.2f | %6.2f/%6.2f\n", BucketLabel(b),
                  tb[49], tb[98], mb.empty() ? 0.0 : mb[49], mb.empty() ? 0.0 : mb[98],
                  pb.empty() ? 0.0 : pb[49], pb.empty() ? 0.0 : pb[98]);
    }
    std::fflush(stdout);
  }
  std::printf("\nclaim: with initW < BDP, Parsimon over-counts the window-limited delay\n"
              "(large positive error on large flows); m3 stays close to the truth\n");
  return 0;
}
