// Figure 13: counterfactual exploration -- sweep HPCC's initial congestion
// window and compare m3's predicted p99 slowdown per flow class against
// ground truth, with the speedup factor.
//
// Paper claim: m3 tracks the trend (larger init window hurts small flows'
// p99) and runs ~1139x faster than ns-3. Setup: WebServer, matrix C, 50%
// load, PFC on, buffer 400KB, eta=0.9.
#include "bench/common.h"
#include "pktsim/simulator.h"

using namespace m3;
using namespace m3::bench;

int main() {
  std::printf("=== Fig 13: HPCC init-window counterfactual sweep ===\n");
  M3Model& model = DefaultModel();

  Mix mix{"F13", "C", "WebServer", 2.0, 0.5, 1.5};
  const std::vector<Bytes> windows{5 * kKB, 10 * kKB, 20 * kKB, 30 * kKB};

  double m3_total_s = 0.0, full_total_s = 0.0;
  std::printf("%-8s | %-28s | %-28s\n", "initW", "truth p99 (S/M/L/XL)", "m3 p99 (S/M/L/XL)");
  for (Bytes w : windows) {
    BuiltMix built = BuildMix(mix, DefaultFlows(), 777);
    built.cfg.cc = CcType::kHpcc;
    built.cfg.pfc = true;
    built.cfg.buffer = 400 * kKB;
    built.cfg.hpcc_eta = 0.9;
    built.cfg.init_window = w;

    WallTimer t_full;
    const auto truth = RunPacketSim(built.ft->topo(), built.wl.flows, built.cfg);
    full_total_s += t_full.Seconds();
    const auto gt = SummarizeGroundTruth(truth);
    const auto gt_p99 = gt.BucketP99();

    M3Options mopts;
    mopts.num_paths = DefaultPaths();
    const NetworkEstimate est = RunM3(built.ft->topo(), built.wl.flows, built.cfg, model, mopts);
    m3_total_s += est.wall_seconds;
    const auto m3_p99 = est.BucketP99();

    std::printf("%5lldKB | %6.2f %6.2f %6.2f %6.2f | %6.2f %6.2f %6.2f %6.2f\n",
                static_cast<long long>(w / kKB), gt_p99[0], gt_p99[1], gt_p99[2], gt_p99[3],
                m3_p99[0], m3_p99[1], m3_p99[2], m3_p99[3]);
    std::fflush(stdout);
  }
  std::printf("speedup vs full simulation: %.0fx (m3 %.1fs vs full %.1fs; paper: 1139x)\n",
              full_total_s / std::max(1e-9, m3_total_s), m3_total_s, full_total_s);
  std::printf("claim: larger init window raises small-flow p99; m3 captures the trend\n");
  return 0;
}
