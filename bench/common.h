// Shared helpers for the benchmark harness.
//
// Every bench binary regenerates one table or figure from the paper at a
// reduced default scale so the whole suite runs in minutes on one CPU.
// Set M3_SCALE=N (default 1) to multiply workload sizes, and M3_PATHS /
// M3_FLOWS to override directly. Paper reference values are printed in a
// `paper=` column where the paper states a number; see EXPERIMENTS.md for
// the recorded comparison.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <sys/stat.h>

#include "core/estimator.h"
#include "core/trainer.h"
#include "parsimon/parsimon.h"
#include "topo/fat_tree.h"
#include "util/stats.h"
#include "workload/generator.h"
#include "workload/size_dist.h"

namespace m3::bench {

inline int EnvInt(const char* name, int def) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : def;
}

inline int Scale() { return std::max(1, EnvInt("M3_SCALE", 1)); }

/// Default workload size for full-network benches.
inline int DefaultFlows() { return EnvInt("M3_FLOWS", 20000 * Scale()); }

/// Default number of sampled paths.
inline int DefaultPaths() { return EnvInt("M3_PATHS", 100 * Scale()); }

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// A named full-network scenario: topology + workload + config.
struct Mix {
  std::string name;
  std::string tm_name;
  std::string workload;
  double oversub;
  double max_load;
  double sigma;
};

struct BuiltMix {
  std::unique_ptr<FatTree> ft;
  GeneratedWorkload wl;
  NetConfig cfg;
};

inline BuiltMix BuildMix(const Mix& mix, int num_flows, std::uint64_t seed = 1) {
  BuiltMix out;
  out.ft = std::make_unique<FatTree>(FatTreeConfig::Small(mix.oversub));
  const auto tm = TrafficMatrix::ByName(mix.tm_name, out.ft->num_racks(),
                                        out.ft->config().racks_per_pod);
  const auto sizes = MakeProductionDist(mix.workload);
  WorkloadSpec spec;
  spec.num_flows = num_flows;
  spec.max_load = mix.max_load;
  spec.burstiness_sigma = mix.sigma;
  spec.seed = seed;
  out.wl = GenerateWorkload(*out.ft, tm, *sizes, spec);
  out.cfg = NetConfig();  // DCTCP defaults (Parsimon's fast mode is DCTCP-only)
  return out;
}

/// The paper's Table 1 mixes (scaled flow counts).
inline std::vector<Mix> Table1Mixes() {
  return {
      {"Mix 1", "A", "CacheFollower", 4.0, 0.42, 1.5},
      {"Mix 2", "B", "WebServer", 1.0, 0.28, 1.5},
      {"Mix 3", "C", "WebServer", 2.0, 0.74, 1.5},
  };
}

inline bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

/// Loads the shared checkpoint, or quick-trains one (and caches it) when
/// missing so every bench binary is self-contained.
inline M3Model& DefaultModel() {
  static M3Model model;
  static bool ready = false;
  if (!ready) {
    const char* env = std::getenv("M3_MODEL");
    const std::string path = env ? env : "models/m3_default.ckpt";
    if (FileExists(path)) {
      model.Load(path);
      std::printf("# model: loaded %s\n", path.c_str());
    } else {
      std::printf("# model: %s missing; quick-training a small model (run "
                  "tools/train_m3 for the full one)...\n",
                  path.c_str());
      std::fflush(stdout);
      DatasetOptions dopts;
      dopts.num_scenarios = 150;
      dopts.num_fg = 400;
      const auto samples = MakeSyntheticDataset(dopts);
      TrainOptions topts;
      topts.epochs = 30;
      TrainModel(model, samples, topts);
      model.Save(path);
      std::printf("# model: quick-trained and cached at %s\n", path.c_str());
    }
    ready = true;
  }
  return model;
}

/// |relative error| of an estimate vs truth, as a percentage.
inline double AbsErrPct(double estimate, double truth) {
  return 100.0 * std::abs(RelativeError(estimate, truth));
}

/// p99 slowdown over all flows of a result set.
inline double P99Slowdown(const std::vector<FlowResult>& results) {
  std::vector<double> sldn;
  sldn.reserve(results.size());
  for (const auto& r : results) sldn.push_back(r.slowdown);
  return Percentile(std::move(sldn), 99.0);
}

inline const char* BucketLabel(int b) {
  switch (b) {
    case 0: return "(0,1KB]";
    case 1: return "(1KB,10KB]";
    case 2: return "(10KB,50KB]";
    case 3: return "(50KB,inf)";
  }
  return "?";
}

}  // namespace m3::bench
