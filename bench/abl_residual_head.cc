// Ablation: residual-over-flowSim output head vs absolute prediction head.
//
// This implementation predicts a log-space correction added to flowSim's
// own bucketed percentiles (DESIGN.md §4). The ablation trains an absolute
// head of identical architecture on the same data and compares held-out
// p99 accuracy.
#include "bench/common.h"
#include "core/dataset.h"

using namespace m3;
using namespace m3::bench;

namespace {

double EvalP99Err(M3Model& model, const std::vector<Sample>& eval, bool use_baseline) {
  std::vector<double> errs;
  for (const Sample& s : eval) {
    const auto pred =
        model.Predict(s.fg_feat, s.bg_seq, s.spec, true, use_baseline ? &s.baseline : nullptr);
    for (int b = 0; b < kNumOutputBuckets; ++b) {
      if (!s.gt.has[static_cast<std::size_t>(b)]) continue;
      const double t99 = s.gt.pct[static_cast<std::size_t>(b)][98];
      if (t99 > 0) errs.push_back(AbsErrPct(pred[static_cast<std::size_t>(b)][98], t99));
    }
  }
  return Mean(errs);
}

}  // namespace

int main() {
  std::printf("=== Ablation: residual vs absolute output head ===\n");
  DatasetOptions dopts;
  dopts.num_scenarios = 200;
  dopts.num_fg = 400;
  dopts.seed = 515;
  std::printf("generating shared train set (%d scenarios)...\n", dopts.num_scenarios);
  std::fflush(stdout);
  const auto train_set = MakeSyntheticDataset(dopts);

  DatasetOptions eopts = dopts;
  eopts.num_scenarios = 40;
  eopts.seed = 616;
  const auto eval_set = MakeSyntheticDataset(eopts);

  TrainOptions topts;
  topts.epochs = 30;

  M3Model residual;
  topts.use_baseline = true;
  const TrainReport r1 = TrainModel(residual, train_set, topts);

  M3Model absolute;
  topts.use_baseline = false;
  const TrainReport r2 = TrainModel(absolute, train_set, topts);

  std::printf("final val loss: residual=%.3f absolute=%.3f\n",
              r1.val_loss.empty() ? 0.0 : r1.val_loss.back(),
              r2.val_loss.empty() ? 0.0 : r2.val_loss.back());
  std::printf("held-out mean |p99 err|: residual=%.1f%%  absolute=%.1f%%\n",
              EvalP99Err(residual, eval_set, true), EvalP99Err(absolute, eval_set, false));
  std::printf("claim: the residual head converges faster and generalizes better at\n"
              "equal training budget (it is exact wherever flowSim already is)\n");
  return 0;
}
