// Figure 2(b)/(d): distribution of hop counts and foreground/background
// flow counts over the flow-weighted path sample, per mix.
#include "bench/common.h"
#include "pathdecomp/decompose.h"
#include "pathdecomp/sampling.h"

using namespace m3;
using namespace m3::bench;

int main() {
  const int num_paths = 500;  // sampling only; cheap at any scale
  std::printf("=== Fig 2(b,d): sampled-path statistics (%d paths/mix) ===\n", num_paths);
  for (const Mix& mix : Table1Mixes()) {
    BuiltMix built = BuildMix(mix, DefaultFlows());
    PathDecomposition decomp(built.ft->topo(), built.wl.flows);
    Rng rng(11);
    const auto sample = SamplePaths(decomp, num_paths, rng);
    const auto stats = ComputePathSampleStats(decomp, sample);

    int hops[7] = {0};
    for (int h : stats.hop_counts) hops[h]++;
    std::vector<double> fg(stats.fg_counts.begin(), stats.fg_counts.end());
    std::vector<double> bg(stats.bg_counts.begin(), stats.bg_counts.end());
    const Summary fg_sum = Summarize(fg);
    const Summary bg_sum = Summarize(bg);

    std::printf("%s (%s/%s): hops {2:%d%% 4:%d%% 6:%d%%}\n", mix.name.c_str(),
                mix.tm_name.c_str(), mix.workload.c_str(), hops[2] * 100 / num_paths,
                hops[4] * 100 / num_paths, hops[6] * 100 / num_paths);
    std::printf("   #fg flows: p50=%.0f p90=%.0f p99=%.0f max=%.0f\n", fg_sum.p50,
                fg_sum.p90, fg_sum.p99, fg_sum.max);
    std::printf("   #bg flows: p50=%.0f p90=%.0f p99=%.0f max=%.0f\n", bg_sum.p50,
                bg_sum.p90, bg_sum.p99, bg_sum.max);
    std::printf("   total populated paths: %zu\n", decomp.num_paths());
    std::fflush(stdout);
  }
  std::printf("claim: cross-pod mixes are dominated by 6-hop paths; background\n"
              "flows outnumber foreground flows by orders of magnitude (Fig 2d)\n");
  return 0;
}
