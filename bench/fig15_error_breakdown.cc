// Figure 15: error breakdown for paths' foreground flows -- how much of
// m3's error comes from path decomposition (ns-3-path's error) vs from the
// flowSim+ML approximation, by flow-size bucket and path length; Parsimon's
// link-independence error shown for comparison.
//
// Paper claim: ignoring non-intersecting traffic (decomposition) accounts
// for less than half of m3's error; Parsimon's link-independence assumption
// is strictly worse across buckets and path lengths.
#include <map>

#include "bench/common.h"
#include "pathdecomp/decompose.h"
#include "pathdecomp/path_topology.h"
#include "pathdecomp/sampling.h"
#include "pktsim/simulator.h"

using namespace m3;
using namespace m3::bench;

int main() {
  const int num_paths = std::max(8, DefaultPaths() / 2);
  std::printf("=== Fig 15: error breakdown on sampled paths (%d paths/mix) ===\n", num_paths);
  M3Model& model = DefaultModel();

  // Per method: per-bucket and per-hop-count |p99 error| collections.
  std::map<std::string, std::map<int, std::vector<double>>> by_bucket, by_hops;

  for (const Mix& mix : Table1Mixes()) {
    BuiltMix built = BuildMix(mix, DefaultFlows(), 1300);
    const auto truth = RunPacketSim(built.ft->topo(), built.wl.flows, built.cfg);

    ParsimonOptions popts;
    popts.cfg = built.cfg;
    const auto pars = RunParsimon(built.ft->topo(), built.wl.flows, popts);

    PathDecomposition decomp(built.ft->topo(), built.wl.flows);
    Rng rng(41);
    const auto sample = SamplePaths(decomp, num_paths, rng);

    for (std::size_t idx : sample) {
      const PathScenario sc = BuildPathScenario(built.ft->topo(), built.wl.flows, decomp, idx);
      if (sc.num_fg() < 5) continue;

      // Ground truth / parsimon per-bucket p99 over this path's fg flows.
      std::array<std::vector<double>, kNumOutputBuckets> true_b, pars_b;
      for (std::size_t i = 0; i < sc.flows.size(); ++i) {
        if (!sc.is_fg[i]) continue;
        const auto oid = static_cast<std::size_t>(sc.orig_id[i]);
        const int b = OutputBucketOf(sc.flows[i].size);
        true_b[static_cast<std::size_t>(b)].push_back(truth[oid].slowdown);
        pars_b[static_cast<std::size_t>(b)].push_back(pars[oid].slowdown);
      }

      // ns-3-path per-bucket p99.
      const auto path_res = RunPathPktSim(sc, built.cfg);
      const TargetDist path_dist = BuildTarget(ForegroundSlowdowns(sc, path_res));

      // m3 per-bucket p99.
      const auto fluid = RunPathFlowSim(sc);
      const ScenarioFeatures feats = ExtractFeatures(sc, fluid);
      const ml::Tensor spec = EncodeSpec(built.cfg, ComputePathSpec(sc, built.cfg));
      const ml::Tensor baseline = TargetToTensor(feats.flowsim_fg);
      const auto m3_pred = model.Predict(feats.fg_feat, feats.bg_seq, spec, true, &baseline);

      for (int b = 0; b < kNumOutputBuckets; ++b) {
        auto& tb = true_b[static_cast<std::size_t>(b)];
        if (tb.size() < 3) continue;
        const double t99 = Percentile(tb, 99);
        if (t99 <= 0) continue;
        const double path_err =
            path_dist.has[static_cast<std::size_t>(b)]
                ? AbsErrPct(path_dist.pct[static_cast<std::size_t>(b)][98], t99)
                : 100.0;
        const double m3_err = AbsErrPct(m3_pred[static_cast<std::size_t>(b)][98], t99);
        const double pars_err =
            AbsErrPct(Percentile(pars_b[static_cast<std::size_t>(b)], 99), t99);
        by_bucket["ns3-path"][b].push_back(path_err);
        by_bucket["m3"][b].push_back(m3_err);
        by_bucket["parsimon"][b].push_back(pars_err);
        by_hops["ns3-path"][sc.num_links].push_back(path_err);
        by_hops["m3"][sc.num_links].push_back(m3_err);
        by_hops["parsimon"][sc.num_links].push_back(pars_err);
      }
    }
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\nmedian |p99 err| by flow-size bucket:\n");
  std::printf("%-12s %10s %10s %10s\n", "bucket", "ns3-path", "m3", "parsimon");
  for (int b = 0; b < kNumOutputBuckets; ++b) {
    auto& np = by_bucket["ns3-path"][b];
    if (np.empty()) continue;
    std::printf("%-12s %9.1f%% %9.1f%% %9.1f%%\n", BucketLabel(b), Percentile(np, 50),
                Percentile(by_bucket["m3"][b], 50), Percentile(by_bucket["parsimon"][b], 50));
  }
  std::printf("median |p99 err| by path length:\n");
  std::printf("%-12s %10s %10s %10s\n", "hops", "ns3-path", "m3", "parsimon");
  for (const auto& [hops, errs] : by_hops["ns3-path"]) {
    std::printf("%-12d %9.1f%% %9.1f%% %9.1f%%\n", hops, Percentile(errs, 50),
                Percentile(by_hops["m3"][hops], 50), Percentile(by_hops["parsimon"][hops], 50));
  }
  std::printf("paper: decomposition (ns3-path) < half of m3's error; parsimon strictly worse\n");
  return 0;
}
