// Figure 10: accuracy and runtime of m3 vs Parsimon over a randomized test
// suite on the 256-host fat tree: (a) p99 error distribution, (b) error vs
// load, (c) runtime distribution, (d) runtime vs workload.
//
// Paper reference: m3 mean |p99 err| 9.9% vs Parsimon 18.3%; m3 max error
// 33% vs Parsimon 146%; m3 4-8x faster than Parsimon end to end.
#include <map>

#include "bench/common.h"
#include "pktsim/simulator.h"

using namespace m3;
using namespace m3::bench;

int main() {
  const int num_scenarios = std::max(6, 4 * Scale());
  std::printf("=== Fig 10: m3 vs Parsimon across %d random scenarios ===\n", num_scenarios);
  M3Model& model = DefaultModel();

  std::vector<double> m3_errs, pars_errs, m3_times, pars_times, full_times;
  std::map<int, std::vector<double>> m3_by_load, pars_by_load;
  std::map<std::string, std::vector<double>> m3_time_by_wl, pars_time_by_wl;

  Rng rng(23);
  const char* tms[3] = {"A", "B", "C"};
  const char* wls[3] = {"CacheFollower", "WebServer", "Hadoop"};
  const double oversubs[3] = {1.0, 2.0, 4.0};

  for (int s = 0; s < num_scenarios; ++s) {
    Mix mix;
    mix.name = "S" + std::to_string(s);
    mix.tm_name = tms[rng.NextBounded(3)];
    mix.workload = wls[rng.NextBounded(3)];
    mix.oversub = oversubs[rng.NextBounded(3)];
    mix.max_load = rng.Uniform(0.26, 0.8);
    mix.sigma = rng.NextDouble() < 0.5 ? 1.0 : 2.0;
    BuiltMix built = BuildMix(mix, DefaultFlows(), 500 + static_cast<std::uint64_t>(s));

    WallTimer t_full;
    const auto truth = RunPacketSim(built.ft->topo(), built.wl.flows, built.cfg);
    full_times.push_back(t_full.Seconds());
    const double p99_true = P99Slowdown(truth);

    M3Options mopts;
    mopts.num_paths = DefaultPaths();
    const NetworkEstimate m3_est = RunM3(built.ft->topo(), built.wl.flows, built.cfg, model, mopts);
    const double m3_err = AbsErrPct(m3_est.CombinedP99(), p99_true);

    WallTimer t_pars;
    ParsimonOptions popts;
    popts.cfg = built.cfg;
    const auto pars = RunParsimon(built.ft->topo(), built.wl.flows, popts);
    const double pars_s = t_pars.Seconds();
    const double pars_err = AbsErrPct(P99Slowdown(pars), p99_true);

    m3_errs.push_back(m3_err);
    pars_errs.push_back(pars_err);
    m3_times.push_back(m3_est.wall_seconds);
    pars_times.push_back(pars_s);
    const int load_bucket = static_cast<int>(mix.max_load * 10) * 10;
    m3_by_load[load_bucket].push_back(m3_err);
    pars_by_load[load_bucket].push_back(pars_err);
    m3_time_by_wl[mix.workload].push_back(m3_est.wall_seconds);
    pars_time_by_wl[mix.workload].push_back(pars_s);

    std::printf("%s tm=%s wl=%-13s o=%.0f:1 load=%2.0f%% sig=%.0f | true p99 %7.2f | "
                "m3 err %5.1f%% (%5.1fs) | pars err %6.1f%% (%5.1fs)\n",
                mix.name.c_str(), mix.tm_name.c_str(), mix.workload.c_str(), mix.oversub,
                100 * mix.max_load, mix.sigma, p99_true, m3_err, m3_est.wall_seconds,
                pars_err, pars_s);
    std::fflush(stdout);
  }

  const Summary m3s = Summarize(m3_errs);
  const Summary ps = Summarize(pars_errs);
  std::printf("\n(a) |p99 err|: m3 mean=%.1f%% max=%.1f%%   parsimon mean=%.1f%% max=%.1f%%\n",
              m3s.mean, m3s.max, ps.mean, ps.max);
  std::printf("    paper:     m3 mean=9.9%% max=33.2%%   parsimon mean=18.3%% max=146%%\n");
  std::printf("(b) median err by load bucket:\n");
  for (const auto& [load, errs] : m3_by_load) {
    std::printf("    load %2d-%2d%%: m3 %.1f%%  parsimon %.1f%% (n=%zu)\n", load, load + 10,
                Percentile(errs, 50), Percentile(pars_by_load[load], 50), errs.size());
  }
  std::printf("(c) runtime: m3 mean=%.1fs  parsimon mean=%.1fs  full-sim mean=%.1fs\n",
              Mean(m3_times), Mean(pars_times), Mean(full_times));
  std::printf("(d) runtime by workload (m3 / parsimon):\n");
  for (const auto& [wl, times] : m3_time_by_wl) {
    std::printf("    %-14s %.1fs / %.1fs\n", wl.c_str(), Mean(times),
                Mean(pars_time_by_wl[wl]));
  }
  std::printf("paper: m3 runtime is insensitive to the size distribution; Parsimon\n"
              "slows down for workloads with more packets per flow\n");
  return 0;
}
