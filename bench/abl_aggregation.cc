// Ablation of the §3.5 aggregation rule. The paper argues that averaging
// bucket percentiles across paths is wrong because different paths
// contribute differently to each aggregate percentile; m3 instead pools the
// per-path distributions weighted by flow count. This bench quantifies the
// difference using exact per-path ground truth (no ML in the loop), so the
// only difference between methods is the aggregation rule.
#include "bench/common.h"
#include "pathdecomp/decompose.h"
#include "pathdecomp/sampling.h"
#include "pktsim/simulator.h"

using namespace m3;
using namespace m3::bench;

namespace {

// Naive aggregation: per-percentile arithmetic mean across paths.
double NaiveP99(const std::vector<PathEstimate>& paths) {
  double total_w = 0.0, sum = 0.0;
  for (const PathEstimate& pe : paths) {
    double cnt = 0.0;
    for (double c : pe.counts) cnt += c;
    if (cnt <= 0) continue;
    // Path-combined p99 via its own count-weighted mixture.
    std::vector<std::pair<double, double>> weighted;
    for (int b = 0; b < kNumOutputBuckets; ++b) {
      if (pe.counts[static_cast<std::size_t>(b)] <= 0) continue;
      for (int p = 0; p < kNumPercentiles; ++p) {
        weighted.emplace_back(pe.pct[static_cast<std::size_t>(b)][static_cast<std::size_t>(p)],
                              pe.counts[static_cast<std::size_t>(b)] / kNumPercentiles);
      }
    }
    sum += WeightedPercentile(std::move(weighted), 99);
    total_w += 1.0;
  }
  return total_w > 0 ? sum / total_w : 0.0;
}

}  // namespace

int main() {
  std::printf("=== Ablation: §3.5 pooled aggregation vs per-path averaging ===\n");

  std::vector<double> pooled_err, naive_err;
  int mix_i = 0;
  for (const Mix& mix : Table1Mixes()) {
    BuiltMix built = BuildMix(mix, DefaultFlows(), 4100 + static_cast<std::uint64_t>(mix_i++));
    const auto truth = RunPacketSim(built.ft->topo(), built.wl.flows, built.cfg);
    const double p99_true = P99Slowdown(truth);

    // Exact per-path distributions from the ground truth itself.
    PathDecomposition decomp(built.ft->topo(), built.wl.flows);
    Rng rng(77);
    const auto sample = SamplePaths(decomp, DefaultPaths(), rng);
    std::vector<PathEstimate> paths;
    for (std::size_t idx : sample) {
      std::vector<SizedSlowdown> fg;
      for (FlowId f : decomp.path(idx).fg_flows) {
        fg.push_back({truth[static_cast<std::size_t>(f)].size,
                      truth[static_cast<std::size_t>(f)].slowdown});
      }
      const TargetDist dist = BuildTarget(fg);
      PathEstimate pe;
      pe.pct = dist.pct;
      pe.counts = dist.counts;
      paths.push_back(pe);
    }

    const auto bucket_pct = AggregateBuckets(paths);
    std::array<double, kNumOutputBuckets> counts{};
    for (const auto& pe : paths) {
      for (int b = 0; b < kNumOutputBuckets; ++b) {
        counts[static_cast<std::size_t>(b)] += pe.counts[static_cast<std::size_t>(b)];
      }
    }
    const double pooled = CombineBuckets(bucket_pct, counts)[98];
    const double naive = NaiveP99(paths);
    pooled_err.push_back(AbsErrPct(pooled, p99_true));
    naive_err.push_back(AbsErrPct(naive, p99_true));
    std::printf("%s: true p99=%.3f  pooled=%.3f (%.1f%%)  naive-avg=%.3f (%.1f%%)\n",
                mix.name.c_str(), p99_true, pooled, pooled_err.back(), naive,
                naive_err.back());
    std::fflush(stdout);
  }
  std::printf("\nmean |p99 err|: pooled=%.1f%%  naive-average=%.1f%%\n", Mean(pooled_err),
              Mean(naive_err));
  std::printf("claim: averaging percentiles across paths underestimates the aggregate\n"
              "tail; §3.5 pooling does not (paper §3.5, Fig 8)\n");
  return 0;
}
