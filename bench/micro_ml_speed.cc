// ML compute-backend microbenchmark: GEMM GFLOP/s for the tiled kernels
// vs. the naive seed loops, and end-to-end TrainModel samples/sec for
// data-parallel training vs. the serial seed baseline (reproduced
// in-process via kernels::SetUseTiled(false) + num_threads=1, so the
// comparison does not require checking out the seed revision).
//
// Emits JSON on stdout; the checked-in snapshot lives in
// BENCH_ml_speed.json so the perf trajectory is tracked across PRs.
//
//   ./micro_ml_speed [trainer_samples] [trainer_epochs]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/model.h"
#include "core/trainer.h"
#include "ml/kernels.h"
#include "ml/tensor.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace m3 {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct GemmResult {
  std::string name;
  int m, k, n;
  double naive_gflops = 0.0;
  double tiled_gflops = 0.0;
};

// Times `fn` by doubling the repetition count until the measurement
// exceeds `min_seconds`, then returns seconds per repetition.
template <typename Fn>
double TimePerRep(const Fn& fn, double min_seconds = 0.2) {
  for (long reps = 1;; reps *= 2) {
    const auto t0 = Clock::now();
    for (long r = 0; r < reps; ++r) fn();
    const double elapsed = SecondsSince(t0);
    if (elapsed >= min_seconds) return elapsed / static_cast<double>(reps);
  }
}

GemmResult BenchGemm(const char* name, int m, int k, int n) {
  Rng rng(2024);
  ml::Tensor a = ml::Tensor::Randn(m, k, rng, 1.0f);
  ml::Tensor b = ml::Tensor::Randn(k, n, rng, 1.0f);
  ml::Tensor c(m, n);
  const double flops = 2.0 * m * k * n;
  GemmResult res{name, m, k, n, 0.0, 0.0};
  const double naive_sec = TimePerRep(
      [&] { ml::kernels::GemmAccumNaive(a.data(), b.data(), c.data(), m, k, n); });
  c.Fill(0.0f);
  const double tiled_sec = TimePerRep([&] {
    ml::kernels::GemmAccum(a.data(), b.data(), c.data(), m, k, n);
  });
  res.naive_gflops = flops / naive_sec * 1e-9;
  res.tiled_gflops = flops / tiled_sec * 1e-9;
  return res;
}

std::vector<Sample> SyntheticSamples(const M3ModelConfig& cfg, int count) {
  Rng rng(7);
  std::vector<Sample> samples(static_cast<std::size_t>(count));
  for (auto& s : samples) {
    const int hops = 1 + static_cast<int>(rng.NextBounded(
                             static_cast<std::size_t>(cfg.max_seq)));
    s.fg_feat = ml::Tensor::Randn(1, cfg.feat_dim, rng, 1.0f);
    s.bg_seq = ml::Tensor::Randn(hops, cfg.feat_dim, rng, 1.0f);
    s.spec = ml::Tensor::Randn(1, cfg.spec_dim, rng, 1.0f);
    s.target = ml::Tensor::Randn(1, cfg.out_dim, rng, 0.5f);
    s.baseline = ml::Tensor::Randn(1, cfg.out_dim, rng, 0.5f);
    s.mask = ml::Tensor::Zeros(1, cfg.out_dim);
    s.mask.Fill(1.0f);
  }
  return samples;
}

struct TrainerResult {
  int num_samples = 0;
  int epochs = 0;
  double seed_serial_sec = 0.0;     // naive kernels, 1 thread (seed baseline)
  double tiled_serial_sec = 0.0;    // tiled kernels, 1 thread
  double tiled_parallel_sec = 0.0;  // tiled kernels, 8 threads
  unsigned pool_threads = 0;
};

double RunTrainer(const M3ModelConfig& cfg, const std::vector<Sample>& samples, int epochs,
                  bool tiled, unsigned threads) {
  ml::kernels::SetUseTiled(tiled);
  M3Model model(cfg);
  TrainOptions opts;
  opts.epochs = epochs;
  opts.batch_size = 16;
  opts.val_frac = 0.1;
  opts.seed = 5;
  opts.num_threads = threads;
  const auto t0 = Clock::now();
  TrainModel(model, samples, opts);
  ml::kernels::SetUseTiled(true);
  return SecondsSince(t0);
}

TrainerResult BenchTrainer(int num_samples, int epochs) {
  const M3ModelConfig cfg;  // full paper-scale model
  const std::vector<Sample> samples = SyntheticSamples(cfg, num_samples);
  TrainerResult res;
  res.num_samples = num_samples;
  res.epochs = epochs;
  res.pool_threads = ThreadPool::Instance().num_threads();
  res.seed_serial_sec = RunTrainer(cfg, samples, epochs, /*tiled=*/false, /*threads=*/1);
  res.tiled_serial_sec = RunTrainer(cfg, samples, epochs, /*tiled=*/true, /*threads=*/1);
  res.tiled_parallel_sec = RunTrainer(cfg, samples, epochs, /*tiled=*/true, /*threads=*/8);
  return res;
}

}  // namespace

double BenchTrainerOnly(int num_samples, int epochs, bool tiled) {
  const M3ModelConfig cfg;
  const std::vector<Sample> samples = SyntheticSamples(cfg, num_samples);
  return RunTrainer(cfg, samples, epochs, tiled, /*threads=*/1);
}

}  // namespace m3

int main(int argc, char** argv) {
  const int trainer_samples = argc > 1 ? std::atoi(argv[1]) : 64;
  const int trainer_epochs = argc > 2 ? std::atoi(argv[2]) : 2;

  // Profiling mode: run only the requested trainer configuration so a
  // profiler sees one code path (usage: micro_ml_speed N E tiled|naive).
  if (argc > 3) {
    const bool tiled = std::string(argv[3]) != "naive";
    const double sec = m3::BenchTrainerOnly(trainer_samples, trainer_epochs, tiled);
    std::printf("{\"trainer_only\": {\"tiled\": %s, \"sec\": %.3f}}\n",
                tiled ? "true" : "false", sec);
    return 0;
  }

  std::vector<m3::GemmResult> gemms;
  // Forward shapes of the model (sequence projection, head layers) plus a
  // square blocked case.
  gemms.push_back(m3::BenchGemm("seq_in_proj", 8, 1010, 96));
  gemms.push_back(m3::BenchGemm("head_fc1", 1, 1127, 256));
  gemms.push_back(m3::BenchGemm("head_fc2", 1, 256, 400));
  gemms.push_back(m3::BenchGemm("square_256", 256, 256, 256));

  const m3::TrainerResult tr = m3::BenchTrainer(trainer_samples, trainer_epochs);

  const double samples_per_epoch =
      static_cast<double>(tr.num_samples) * 0.9;  // 10% val split
  const double seed_sps = samples_per_epoch * tr.epochs / tr.seed_serial_sec;
  const double tiled_sps = samples_per_epoch * tr.epochs / tr.tiled_serial_sec;
  const double par_sps = samples_per_epoch * tr.epochs / tr.tiled_parallel_sec;

  std::printf("{\n");
  std::printf("  \"gemm\": [\n");
  for (std::size_t i = 0; i < gemms.size(); ++i) {
    const auto& g = gemms[i];
    std::printf("    {\"name\": \"%s\", \"m\": %d, \"k\": %d, \"n\": %d, "
                "\"naive_gflops\": %.3f, \"tiled_gflops\": %.3f, \"speedup\": %.2f}%s\n",
                g.name.c_str(), g.m, g.k, g.n, g.naive_gflops, g.tiled_gflops,
                g.tiled_gflops / g.naive_gflops, i + 1 < gemms.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"trainer\": {\n");
  std::printf("    \"num_samples\": %d, \"epochs\": %d, \"pool_threads\": %u,\n",
              tr.num_samples, tr.epochs, tr.pool_threads);
  std::printf("    \"seed_serial_sec\": %.3f, \"seed_serial_samples_per_sec\": %.1f,\n",
              tr.seed_serial_sec, seed_sps);
  std::printf("    \"tiled_serial_sec\": %.3f, \"tiled_serial_samples_per_sec\": %.1f,\n",
              tr.tiled_serial_sec, tiled_sps);
  std::printf("    \"tiled_parallel8_sec\": %.3f, \"tiled_parallel8_samples_per_sec\": %.1f,\n",
              tr.tiled_parallel_sec, par_sps);
  std::printf("    \"speedup_tiled_serial_vs_seed\": %.2f,\n",
              tr.seed_serial_sec / tr.tiled_serial_sec);
  std::printf("    \"speedup_parallel8_vs_seed\": %.2f\n",
              tr.seed_serial_sec / tr.tiled_parallel_sec);
  std::printf("  }\n");
  std::printf("}\n");
  return 0;
}
