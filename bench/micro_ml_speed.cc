// ML compute-backend microbenchmark: GEMM GFLOP/s for every available
// kernel implementation (naive seed loops, tiled, AVX2, AVX-512) on the
// model's hot shapes, and end-to-end TrainModel samples/sec for
// data-parallel training vs. the serial seed baseline (reproduced
// in-process via the naive kernel tier + num_threads=1, so the comparison
// does not require checking out the seed revision).
//
// Every trainer row records both the *requested* thread count and the
// *effective* one (requested clamped to the pool width, which is sized
// from M3_NUM_THREADS / hardware_concurrency): on a 1-CPU host a
// "parallel8" row runs with effective_threads=1 and says so, instead of
// implying an 8-way measurement that never happened.
//
// Emits JSON on stdout; the checked-in snapshot lives in
// BENCH_ml_speed.json so the perf trajectory is tracked across PRs.
//
//   ./micro_ml_speed [trainer_samples] [trainer_epochs]
//   ./micro_ml_speed N E naive|tiled|avx2|avx512   (profiling mode: one
//                                                   serial trainer run)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/model.h"
#include "core/trainer.h"
#include "ml/kernels.h"
#include "ml/tensor.h"
#include "util/cpu_features.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace m3 {
namespace {

using Clock = std::chrono::steady_clock;
using ml::kernels::KernelImpl;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<KernelImpl> AvailableImpls() {
  std::vector<KernelImpl> impls;
  for (KernelImpl impl : {KernelImpl::kNaive, KernelImpl::kTiled, KernelImpl::kAvx2,
                          KernelImpl::kAvx512}) {
    if (ml::kernels::KernelImplAvailable(impl)) impls.push_back(impl);
  }
  return impls;
}

// Times `fn` by doubling the repetition count until the measurement
// exceeds `min_seconds`, then returns seconds per repetition.
template <typename Fn>
double TimePerRep(const Fn& fn, double min_seconds = 0.2) {
  for (long reps = 1;; reps *= 2) {
    const auto t0 = Clock::now();
    for (long r = 0; r < reps; ++r) fn();
    const double elapsed = SecondsSince(t0);
    if (elapsed >= min_seconds) return elapsed / static_cast<double>(reps);
  }
}

struct GemmResult {
  std::string name;
  int m, k, n;
  // Parallel arrays: impl -> GFLOP/s (only available impls present).
  std::vector<KernelImpl> impls;
  std::vector<double> gflops;
};

GemmResult BenchGemm(const char* name, int m, int k, int n) {
  Rng rng(2024);
  ml::Tensor a = ml::Tensor::Randn(m, k, rng, 1.0f);
  ml::Tensor b = ml::Tensor::Randn(k, n, rng, 1.0f);
  ml::Tensor c(m, n);
  const double flops = 2.0 * m * k * n;
  GemmResult res;
  res.name = name;
  res.m = m;
  res.k = k;
  res.n = n;
  const KernelImpl prev = ml::kernels::GetKernelImpl();
  for (KernelImpl impl : AvailableImpls()) {
    ml::kernels::SetKernelImpl(impl);
    c.Fill(0.0f);
    // Best-of-5: the container shares its host, so single measurements
    // swing by 30%+; the minimum is the least-disturbed run.
    double sec = 1e30;
    for (int rep = 0; rep < 5; ++rep)
      sec = std::min(sec, TimePerRep([&] {
              ml::kernels::GemmAccum(a.data(), b.data(), c.data(), m, k, n);
            }));
    res.impls.push_back(impl);
    res.gflops.push_back(flops / sec * 1e-9);
  }
  ml::kernels::SetKernelImpl(prev);
  return res;
}

std::vector<Sample> SyntheticSamples(const M3ModelConfig& cfg, int count) {
  Rng rng(7);
  std::vector<Sample> samples(static_cast<std::size_t>(count));
  for (auto& s : samples) {
    const int hops = 1 + static_cast<int>(rng.NextBounded(
                             static_cast<std::size_t>(cfg.max_seq)));
    s.fg_feat = ml::Tensor::Randn(1, cfg.feat_dim, rng, 1.0f);
    s.bg_seq = ml::Tensor::Randn(hops, cfg.feat_dim, rng, 1.0f);
    s.spec = ml::Tensor::Randn(1, cfg.spec_dim, rng, 1.0f);
    s.target = ml::Tensor::Randn(1, cfg.out_dim, rng, 0.5f);
    s.baseline = ml::Tensor::Randn(1, cfg.out_dim, rng, 0.5f);
    s.mask = ml::Tensor::Zeros(1, cfg.out_dim);
    s.mask.Fill(1.0f);
  }
  return samples;
}

struct TrainerRow {
  std::string label;
  KernelImpl impl;
  unsigned requested_threads = 0;
  unsigned effective_threads = 0;
  double sec = 0.0;
  double samples_per_sec = 0.0;
};

double RunTrainerOnce(const M3ModelConfig& cfg, const std::vector<Sample>& samples,
                      int epochs, KernelImpl impl, unsigned threads) {
  const KernelImpl prev = ml::kernels::GetKernelImpl();
  ml::kernels::SetKernelImpl(impl);
  M3Model model(cfg);
  TrainOptions opts;
  opts.epochs = epochs;
  opts.batch_size = 16;
  opts.val_frac = 0.1;
  opts.seed = 5;
  opts.num_threads = threads;
  const auto t0 = Clock::now();
  TrainModel(model, samples, opts);
  const double sec = SecondsSince(t0);
  ml::kernels::SetKernelImpl(prev);
  return sec;
}

TrainerRow BenchTrainerRow(const char* label, const M3ModelConfig& cfg,
                           const std::vector<Sample>& samples, int epochs, KernelImpl impl,
                           unsigned threads, int repeats) {
  TrainerRow row;
  row.label = label;
  row.impl = impl;
  row.requested_threads = threads;
  row.effective_threads = std::min(threads, ThreadPool::Instance().num_threads());
  row.sec = 1e30;
  for (int r = 0; r < repeats; ++r)
    row.sec = std::min(row.sec, RunTrainerOnce(cfg, samples, epochs, impl, threads));
  const double samples_per_epoch =
      static_cast<double>(samples.size()) * 0.9;  // 10% val split
  row.samples_per_sec = samples_per_epoch * epochs / row.sec;
  return row;
}

}  // namespace

double BenchTrainerOnly(int num_samples, int epochs, ml::kernels::KernelImpl impl) {
  const M3ModelConfig cfg;
  const std::vector<Sample> samples = SyntheticSamples(cfg, num_samples);
  return RunTrainerOnce(cfg, samples, epochs, impl, /*threads=*/1);
}

}  // namespace m3

int main(int argc, char** argv) {
  const int trainer_samples = argc > 1 ? std::atoi(argv[1]) : 64;
  const int trainer_epochs = argc > 2 ? std::atoi(argv[2]) : 2;

  // Profiling mode: run only the requested trainer configuration so a
  // profiler sees one code path.
  if (argc > 3) {
    m3::ml::kernels::KernelImpl impl;
    if (!m3::ml::kernels::ParseKernelImpl(argv[3], &impl)) {
      std::fprintf(stderr, "unknown impl %s (want naive|tiled|avx2|avx512)\n", argv[3]);
      return 1;
    }
    const double sec = m3::BenchTrainerOnly(trainer_samples, trainer_epochs, impl);
    std::printf("{\"trainer_only\": {\"impl\": \"%s\", \"sec\": %.3f}}\n",
                m3::ml::kernels::KernelImplName(impl), sec);
    return 0;
  }

  using m3::ml::kernels::KernelImpl;
  const KernelImpl active = m3::ml::kernels::GetKernelImpl();

  std::vector<m3::GemmResult> gemms;
  // Forward shapes of the model (sequence projection, head layers) plus a
  // square blocked case.
  gemms.push_back(m3::BenchGemm("seq_in_proj", 8, 1010, 96));
  gemms.push_back(m3::BenchGemm("head_fc1", 1, 1127, 256));
  gemms.push_back(m3::BenchGemm("head_fc2", 1, 256, 400));
  gemms.push_back(m3::BenchGemm("square_256", 256, 256, 256));

  const m3::M3ModelConfig cfg;
  const std::vector<m3::Sample> samples = m3::SyntheticSamples(cfg, trainer_samples);
  const int kRepeats = 3;  // best-of-3 per row to damp scheduler noise
  std::vector<m3::TrainerRow> rows;
  rows.push_back(m3::BenchTrainerRow("seed_serial", cfg, samples, trainer_epochs,
                                     KernelImpl::kNaive, 1, kRepeats));
  rows.push_back(m3::BenchTrainerRow("tiled_serial", cfg, samples, trainer_epochs,
                                     KernelImpl::kTiled, 1, kRepeats));
  if (active != KernelImpl::kTiled && active != KernelImpl::kNaive) {
    std::string label = std::string(m3::ml::kernels::KernelImplName(active)) + "_serial";
    rows.push_back(m3::BenchTrainerRow(label.c_str(), cfg, samples, trainer_epochs, active,
                                       1, kRepeats));
  }
  {
    std::string label = std::string(m3::ml::kernels::KernelImplName(active)) + "_parallel8";
    rows.push_back(m3::BenchTrainerRow(label.c_str(), cfg, samples, trainer_epochs, active,
                                       8, kRepeats));
  }

  std::printf("{\n");
  std::printf("  \"host\": {\"hardware_concurrency\": %u, \"pool_threads\": %u, "
              "\"cpu_features\": \"%s\", \"active_impl\": \"%s\"},\n",
              std::thread::hardware_concurrency(),
              m3::ThreadPool::Instance().num_threads(),
              m3::CpuFeatureSummary().c_str(), m3::ml::kernels::KernelImplName(active));
  std::printf("  \"gemm\": [\n");
  for (std::size_t i = 0; i < gemms.size(); ++i) {
    const auto& g = gemms[i];
    std::printf("    {\"name\": \"%s\", \"m\": %d, \"k\": %d, \"n\": %d", g.name.c_str(),
                g.m, g.k, g.n);
    double naive_gf = 0.0, best_gf = 0.0;
    for (std::size_t t = 0; t < g.impls.size(); ++t) {
      std::printf(", \"%s_gflops\": %.3f", m3::ml::kernels::KernelImplName(g.impls[t]),
                  g.gflops[t]);
      if (g.impls[t] == KernelImpl::kNaive) naive_gf = g.gflops[t];
      best_gf = std::max(best_gf, g.gflops[t]);
    }
    std::printf(", \"best_speedup_vs_naive\": %.2f}%s\n",
                naive_gf > 0.0 ? best_gf / naive_gf : 0.0,
                i + 1 < gemms.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"trainer\": {\n");
  std::printf("    \"num_samples\": %d, \"epochs\": %d,\n", trainer_samples,
              trainer_epochs);
  std::printf("    \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::printf("      {\"label\": \"%s\", \"impl\": \"%s\", \"requested_threads\": %u, "
                "\"effective_threads\": %u, \"sec\": %.3f, \"samples_per_sec\": %.1f}%s\n",
                r.label.c_str(), m3::ml::kernels::KernelImplName(r.impl),
                r.requested_threads, r.effective_threads, r.sec, r.samples_per_sec,
                i + 1 < rows.size() ? "," : "");
  }
  std::printf("    ],\n");
  const double seed_sec = rows.front().sec;
  std::printf("    \"speedup_serial_vs_seed\": %.2f,\n",
              seed_sec / rows[rows.size() >= 3 ? rows.size() - 2 : 1].sec);
  std::printf("    \"speedup_parallel8_vs_seed\": %.2f\n", seed_sec / rows.back().sec);
  std::printf("  }\n");
  std::printf("}\n");
  return 0;
}
