// Figure 2(c)/(e): per-path accuracy of path-level packet simulation
// (ns-3-path) against the full-network simulation, overall and broken down
// by hop count.
//
// Paper claim: path-level simulation reproduces per-path p99 slowdown with
// low error (within ~10%) robustly across scenarios and path lengths.
#include <map>

#include "bench/common.h"
#include "pathdecomp/decompose.h"
#include "pathdecomp/path_topology.h"
#include "pathdecomp/sampling.h"
#include "pktsim/simulator.h"

using namespace m3;
using namespace m3::bench;

int main() {
  const int num_paths = std::max(10, DefaultPaths() / 2);
  std::printf("=== Fig 2(c,e): ns-3-path vs full simulation, per path (%d paths/mix) ===\n",
              num_paths);
  for (const Mix& mix : Table1Mixes()) {
    BuiltMix built = BuildMix(mix, DefaultFlows());
    const auto truth = RunPacketSim(built.ft->topo(), built.wl.flows, built.cfg);

    PathDecomposition decomp(built.ft->topo(), built.wl.flows);
    Rng rng(13);
    const auto sample = SamplePaths(decomp, num_paths, rng);

    std::vector<double> errors;
    std::map<int, std::vector<double>> errors_by_hops;
    for (std::size_t idx : sample) {
      const PathScenario sc = BuildPathScenario(built.ft->topo(), built.wl.flows, decomp, idx);
      if (sc.num_fg() < 3) continue;  // p99 of 1-2 flows is meaningless
      const auto path_res = RunPathPktSim(sc, built.cfg);

      // Per-path p99 from the path-level sim vs the same flows in the full
      // simulation.
      std::vector<double> path_sldn, true_sldn;
      for (std::size_t i = 0; i < sc.flows.size(); ++i) {
        if (!sc.is_fg[i]) continue;
        path_sldn.push_back(path_res[i].slowdown);
        true_sldn.push_back(truth[static_cast<std::size_t>(sc.orig_id[i])].slowdown);
      }
      const double err =
          RelativeError(Percentile(path_sldn, 99), Percentile(true_sldn, 99));
      errors.push_back(std::abs(err));
      errors_by_hops[sc.num_links].push_back(std::abs(err));
    }

    const Summary s = Summarize(errors);
    std::printf("%s: per-path |p99 err| median=%.1f%% p90=%.1f%% max=%.1f%% (n=%zu)\n",
                mix.name.c_str(), 100 * s.p50, 100 * s.p90, 100 * s.max, errors.size());
    for (const auto& [hops, errs] : errors_by_hops) {
      std::printf("   %d hops: median=%.1f%% (n=%zu)\n", hops,
                  100 * Percentile(errs, 50), errs.size());
    }
    std::fflush(stdout);
  }
  std::printf("paper: ns-3-path aggregate p99 error ~2%%, robust to hops & #fg flows\n");
  return 0;
}
