// Figure 17 (Appendix B): m3's p99 slowdown estimation error across the
// Table 4 configuration space, grouped by buffer size, init window, CC
// protocol, and PFC flag, on held-out synthetic paths.
//
// Paper claim: the error distribution stays comparable across every slice
// of the configuration space (the model generalizes over Table 4).
#include <map>

#include "bench/common.h"
#include "core/dataset.h"

using namespace m3;
using namespace m3::bench;

int main() {
  const int num_eval = std::max(32, 24 * Scale());
  std::printf("=== Fig 17: error across network configurations (%d paths) ===\n", num_eval);
  M3Model& model = DefaultModel();

  // Held-out scenarios with per-scenario random Table-4 configs.
  Rng rng(90210);
  std::map<std::string, std::vector<double>> groups;
  for (int i = 0; i < num_eval; ++i) {
    Rng wl_rng = rng.Fork(static_cast<std::uint64_t>(2 * i));
    Rng cfg_rng = rng.Fork(static_cast<std::uint64_t>(2 * i + 1));
    const SyntheticSpec spec = SyntheticSpec::Sample(wl_rng, 500);
    const NetConfig cfg = NetConfig::Sample(cfg_rng);
    const PathScenario sc = BuildSyntheticScenario(spec);
    const Sample s = BuildSample(sc, cfg);
    const auto pred = model.Predict(s.fg_feat, s.bg_seq, s.spec, true, &s.baseline);

    std::vector<double> errs;
    for (int b = 0; b < kNumOutputBuckets; ++b) {
      if (!s.gt.has[static_cast<std::size_t>(b)]) continue;
      const double t99 = s.gt.pct[static_cast<std::size_t>(b)][98];
      if (t99 > 0) errs.push_back(AbsErrPct(pred[static_cast<std::size_t>(b)][98], t99));
    }
    if (errs.empty()) continue;
    const double err = Mean(errs);

    groups["buffer " + std::string(cfg.buffer < 350 * kKB ? "200-350KB" : "350-500KB")]
        .push_back(err);
    groups["initW " + std::string(cfg.init_window < 17 * kKB ? "5-17KB" : "17-30KB")]
        .push_back(err);
    groups[std::string("cc ") + CcName(cfg.cc)].push_back(err);
    groups[std::string("pfc ") + (cfg.pfc ? "on" : "off")].push_back(err);
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n%-18s %10s %10s %6s\n", "slice", "median", "p90", "n");
  for (const auto& [k, v] : groups) {
    std::printf("%-18s %9.1f%% %9.1f%% %6zu\n", k.c_str(), Percentile(v, 50),
                Percentile(v, 90), v.size());
  }
  std::printf("paper: error distributions are comparable across all Table-4 slices\n");
  return 0;
}
