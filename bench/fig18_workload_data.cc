// Figure 18: the evaluation inputs -- traffic matrices A/B/C (skew
// diagnostics and a coarse rack-level heat summary) and the flow-size CDFs
// of the three production workloads.
#include <algorithm>

#include "bench/common.h"
#include "workload/traffic_matrix.h"

using namespace m3;
using namespace m3::bench;

int main() {
  std::printf("=== Fig 18(a): traffic matrices (32 racks) ===\n");
  for (const char* name : {"A", "B", "C"}) {
    const auto tm = TrafficMatrix::ByName(name, 32, 16);
    // Coarse summaries standing in for the heatmap.
    double intra_pod = 0.0, total = 0.0;
    for (int i = 0; i < 32; ++i) {
      for (int j = 0; j < 32; ++j) {
        const double w = tm.weight(i, j);
        total += w;
        if (i / 16 == j / 16) intra_pod += w;
      }
    }
    std::printf("matrix %s: top-1%% pair share=%.1f%%  intra-pod share=%.1f%%\n", name,
                100 * tm.Top1PercentShare(), 100 * intra_pod / total);
  }
  std::printf("claim: skew ordering C > A > B; A is pod-local heavy\n\n");

  std::printf("=== Fig 18(b): flow size distributions ===\n");
  std::printf("%-16s %10s %10s %10s %10s %10s %12s\n", "workload", "p10", "p50", "p90",
              "p99", "p99.9", "mean");
  Rng rng(5);
  for (const char* name : {"WebServer", "CacheFollower", "Hadoop"}) {
    const auto d = MakeProductionDist(name);
    std::vector<double> sizes;
    for (int i = 0; i < 200000; ++i) sizes.push_back(static_cast<double>(d->Sample(rng)));
    std::sort(sizes.begin(), sizes.end());
    std::printf("%-16s %10.0f %10.0f %10.0f %10.0f %10.0f %12.0f\n", name,
                PercentileOfSorted(sizes, 10), PercentileOfSorted(sizes, 50),
                PercentileOfSorted(sizes, 90), PercentileOfSorted(sizes, 99),
                PercentileOfSorted(sizes, 99.9), d->Mean());
  }
  std::printf("claim: heavy-tailed; WebServer smallest, Hadoop/CacheFollower carry\n"
              "multi-MB tails (shapes modeled after Roy et al. [48]; see DESIGN.md)\n");
  return 0;
}
