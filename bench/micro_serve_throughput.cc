// Serving-throughput microbenchmark: cold (compute) vs warm (content-
// addressed cache hit) queries through the in-process EstimationService,
// the per-path cache's cross-query reuse, and the warm-restart point — a
// fresh service on the same --cache-dir recovering its working set from
// disk (serve/persist.h) instead of recomputing it.
//
// Emits JSON on stdout; the checked-in snapshot lives in
// BENCH_serve_throughput.json. The service contract this tracks: a warm
// query-cache hit must be at least ~5x faster than a cold m3_query-style
// compute (in practice it is orders of magnitude faster), and a recovered
// warm set must serve at warm speed, not cold.
//
//   ./micro_serve_throughput [num_queries] [flows_per_query] [paths]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "serve/service.h"
#include "topo/fat_tree.h"
#include "workload/generator.h"
#include "workload/size_dist.h"

namespace m3::serve {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double PercentileMs(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(v.size()) - 1,
                       p / 100.0 * static_cast<double>(v.size())));
  return v[idx] * 1000.0;
}

M3ModelConfig BenchModel() {
  M3ModelConfig mcfg;
  mcfg.d_model = 32;
  mcfg.num_layers = 1;
  mcfg.ff_dim = 64;
  mcfg.mlp_hidden = 64;
  return mcfg;
}

QueryRequest MakeQuery(const FatTree& ft, int flows_per_query, int paths,
                       std::uint64_t wl_seed) {
  const auto tm = TrafficMatrix::MatrixB(ft.num_racks(), ft.config().racks_per_pod);
  const auto sizes = MakeWebServer();
  WorkloadSpec wspec;
  wspec.num_flows = flows_per_query;
  wspec.seed = wl_seed;
  const std::vector<Flow> flows = GenerateWorkload(ft, tm, *sizes, wspec).flows;
  QueryRequest req;
  req.oversub = 2.0;
  req.num_paths = paths;
  req.flows.reserve(flows.size());
  for (const Flow& f : flows) {
    WireFlow wf;
    wf.id = f.id;
    wf.src_host = ft.HostIndexOf(f.src);
    wf.dst_host = ft.HostIndexOf(f.dst);
    wf.size = f.size;
    wf.arrival = f.arrival;
    wf.priority = f.priority;
    req.flows.push_back(wf);
  }
  return req;
}

struct Phase {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

template <typename Fn>
Phase TimeQueries(int n, const Fn& run_one) {
  std::vector<double> lat;
  lat.reserve(static_cast<std::size_t>(n));
  const auto t0 = Clock::now();
  for (int i = 0; i < n; ++i) {
    const auto q0 = Clock::now();
    run_one(i);
    lat.push_back(SecondsSince(q0));
  }
  const double wall = SecondsSince(t0);
  Phase ph;
  ph.qps = static_cast<double>(n) / wall;
  ph.p50_ms = PercentileMs(lat, 50);
  ph.p99_ms = PercentileMs(lat, 99);
  return ph;
}

}  // namespace
}  // namespace m3::serve

int main(int argc, char** argv) {
  using namespace m3;
  using namespace m3::serve;

  const int num_queries = argc > 1 ? std::atoi(argv[1]) : 12;
  const int flows_per_query = argc > 2 ? std::atoi(argv[2]) : 400;
  const int paths = argc > 3 ? std::atoi(argv[3]) : 4;
  if (num_queries < 1 || flows_per_query < 1 || paths < 1) {
    std::fprintf(stderr, "usage: micro_serve_throughput [queries>=1] [flows>=1] [paths>=1]\n");
    return 2;
  }

  const std::string ckpt = "/tmp/m3_serve_bench_model.ckpt";
  {
    M3Model model(BenchModel());
    model.Save(ckpt);
  }

  const std::string cache_dir = "/tmp/m3_serve_bench_cache";
  std::filesystem::remove_all(cache_dir);

  ServiceOptions so;
  so.model_config = BenchModel();
  so.threads_per_query = 0;  // single caller: give each query the full pool
  so.cache_dir = cache_dir;  // durable spill for the warm-restart phase
  so.cache_flush_interval_seconds = 60.0;  // flushed explicitly below
  auto service_ptr = std::make_unique<EstimationService>(so);
  EstimationService& service = *service_ptr;
  if (Status st = service.ReloadModel(ckpt); !st.ok()) {
    std::fprintf(stderr, "micro_serve_throughput: %s\n", st.ToString().c_str());
    return 1;
  }
  if (Status st = service.Start(); !st.ok()) {  // starts the persister
    std::fprintf(stderr, "micro_serve_throughput: %s\n", st.ToString().c_str());
    return 1;
  }

  const FatTree ft(FatTreeConfig::Small(2.0));
  std::vector<QueryRequest> queries;
  for (int i = 0; i < num_queries; ++i) {
    queries.push_back(MakeQuery(ft, flows_per_query, paths,
                                1000 + static_cast<std::uint64_t>(i)));
  }

  int failures = 0;
  const auto run = [&](int i) {
    const QueryResponse resp = service.ExecuteInline(queries[static_cast<std::size_t>(i)]);
    if (!resp.status.ok()) ++failures;
  };

  // Cold: every query is a first sight — full compute, caches filling.
  const Phase cold = TimeQueries(num_queries, run);
  // Warm: identical queries — whole-query cache hits.
  const Phase warm = TimeQueries(num_queries, run);
  // Path-reuse: query cache dropped, per-path cache kept, so the pipeline
  // runs but every sampled path is a content-addressed hit.
  service.ClearQueryCache();
  const Phase path_reuse = TimeQueries(num_queries, run);

  const ServerStatsWire s = service.Stats();

  // Warm restart: spill the working set, tear the service down, and bring
  // up a fresh one on the same cache directory. Its first pass over the
  // same queries is served from the recovered caches.
  if (Status st = service.FlushPersistNow(); !st.ok()) {
    std::fprintf(stderr, "micro_serve_throughput: flush: %s\n", st.ToString().c_str());
    return 1;
  }
  const std::uint64_t entries_flushed = service.Stats().persist_entries_flushed;
  service.Stop();
  service_ptr.reset();  // releases the cache-dir lock

  EstimationService restarted(so);
  if (Status st = restarted.ReloadModel(ckpt); !st.ok()) {
    std::fprintf(stderr, "micro_serve_throughput: %s\n", st.ToString().c_str());
    return 1;
  }
  if (Status st = restarted.Start(); !st.ok()) {
    std::fprintf(stderr, "micro_serve_throughput: %s\n", st.ToString().c_str());
    return 1;
  }
  restarted.WaitForPersistRecovery();
  const Phase warm_restart = TimeQueries(num_queries, [&](int i) {
    const QueryResponse resp =
        restarted.ExecuteInline(queries[static_cast<std::size_t>(i)]);
    if (!resp.status.ok()) ++failures;
  });
  const ServerStatsWire rs = restarted.Stats();
  restarted.Stop();

  if (failures > 0) {
    std::fprintf(stderr, "micro_serve_throughput: %d queries failed\n", failures);
    return 1;
  }

  std::printf("{\n");
  std::printf("  \"bench\": \"serve_throughput\",\n");
  std::printf("  \"config\": {\"queries\": %d, \"flows_per_query\": %d, \"paths\": %d},\n",
              num_queries, flows_per_query, paths);
  std::printf("  \"cold\":       {\"qps\": %.2f, \"p50_ms\": %.2f, \"p99_ms\": %.2f},\n",
              cold.qps, cold.p50_ms, cold.p99_ms);
  std::printf("  \"warm\":       {\"qps\": %.2f, \"p50_ms\": %.2f, \"p99_ms\": %.2f},\n",
              warm.qps, warm.p50_ms, warm.p99_ms);
  std::printf("  \"path_reuse\": {\"qps\": %.2f, \"p50_ms\": %.2f, \"p99_ms\": %.2f},\n",
              path_reuse.qps, path_reuse.p50_ms, path_reuse.p99_ms);
  std::printf("  \"warm_restart\": {\"qps\": %.2f, \"p50_ms\": %.2f, \"p99_ms\": %.2f},\n",
              warm_restart.qps, warm_restart.p50_ms, warm_restart.p99_ms);
  std::printf("  \"warm_over_cold\": %.1f,\n", warm.qps / cold.qps);
  std::printf("  \"warm_restart_over_cold\": %.1f,\n", warm_restart.qps / cold.qps);
  std::printf("  \"persist\": {\"entries_flushed\": %llu, \"entries_loaded\": %llu, "
              "\"records_corrupt\": %llu},\n",
              static_cast<unsigned long long>(entries_flushed),
              static_cast<unsigned long long>(rs.persist_entries_loaded),
              static_cast<unsigned long long>(rs.persist_records_corrupt));
  std::printf("  \"query_cache\": {\"hits\": %llu, \"misses\": %llu, \"entries\": %llu},\n",
              static_cast<unsigned long long>(s.query_cache[0]),
              static_cast<unsigned long long>(s.query_cache[1]),
              static_cast<unsigned long long>(s.query_cache[4]));
  std::printf("  \"path_cache\": {\"hits\": %llu, \"misses\": %llu, \"entries\": %llu}\n",
              static_cast<unsigned long long>(s.path_cache[0]),
              static_cast<unsigned long long>(s.path_cache[1]),
              static_cast<unsigned long long>(s.path_cache[4]));
  std::printf("}\n");
  return 0;
}
