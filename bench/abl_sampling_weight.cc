// Ablation: flow-weighted path sampling (§3.2) vs uniform path sampling.
//
// The estimator pools foreground flows of sampled paths; weighting the
// sample by foreground flow count makes that pool a flow-weighted sample of
// the network. Uniform path sampling over-represents near-empty paths and
// needs far more samples for the same tail accuracy.
#include "bench/common.h"
#include "pathdecomp/decompose.h"
#include "pathdecomp/sampling.h"
#include "pktsim/simulator.h"

using namespace m3;
using namespace m3::bench;

namespace {

std::vector<std::size_t> SampleUniform(const PathDecomposition& decomp, int k, Rng& rng) {
  std::vector<std::size_t> out;
  out.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    out.push_back(rng.NextBounded(decomp.num_paths()));
  }
  return out;
}

double SampleP99(const PathDecomposition& decomp, const std::vector<std::size_t>& sample,
                 const std::vector<FlowResult>& truth) {
  std::vector<double> sldn;
  for (std::size_t idx : sample) {
    for (FlowId f : decomp.path(idx).fg_flows) {
      sldn.push_back(truth[static_cast<std::size_t>(f)].slowdown);
    }
  }
  return sldn.empty() ? 0.0 : Percentile(std::move(sldn), 99);
}

}  // namespace

int main() {
  std::printf("=== Ablation: weighted vs uniform path sampling ===\n");
  const int trials = 8;

  std::vector<double> weighted_err, uniform_err;
  int mix_i = 0;
  for (const Mix& mix : Table1Mixes()) {
    BuiltMix built = BuildMix(mix, DefaultFlows(), 3100 + static_cast<std::uint64_t>(mix_i++));
    const auto truth = RunPacketSim(built.ft->topo(), built.wl.flows, built.cfg);
    const double p99_true = P99Slowdown(truth);
    PathDecomposition decomp(built.ft->topo(), built.wl.flows);

    for (int t = 0; t < trials; ++t) {
      Rng rng(static_cast<std::uint64_t>(10 * mix_i + t));
      const auto w = SamplePaths(decomp, 100, rng);
      Rng rng2(static_cast<std::uint64_t>(10 * mix_i + t));
      const auto u = SampleUniform(decomp, 100, rng2);
      weighted_err.push_back(AbsErrPct(SampleP99(decomp, w, truth), p99_true));
      uniform_err.push_back(AbsErrPct(SampleP99(decomp, u, truth), p99_true));
    }
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n100-path sample, |p99 err| vs full flow set (%d trials x 3 mixes):\n",
              trials);
  std::printf("  weighted: median=%5.1f%%  p90=%5.1f%%\n", Percentile(weighted_err, 50),
              Percentile(weighted_err, 90));
  std::printf("  uniform:  median=%5.1f%%  p90=%5.1f%%\n", Percentile(uniform_err, 50),
              Percentile(uniform_err, 90));
  std::printf("paper claim: flow-count weighting beats uniform sampling at equal budget.\n"
              "note: the two converge when most paths carry ~1 foreground flow (sparse\n"
              "scaled-down workloads); weighting pays off as path populations diverge.\n");
  return 0;
}
