#include <gtest/gtest.h>

#include "parsimon/parsimon.h"
#include "pktsim/simulator.h"
#include "topo/fat_tree.h"
#include "topo/parking_lot.h"
#include "util/stats.h"
#include "workload/generator.h"
#include "workload/size_dist.h"

namespace m3 {
namespace {

TEST(Parsimon, UnloadedFlowHasNoExtraDelay) {
  ParkingLot pl(2, GbpsToBpns(10), 1000, /*hosts_at_ends=*/true);
  Flow f{0, pl.switch_at(0), pl.switch_at(2), 100000, 0,
         pl.RouteBetween(pl.switch_at(0), 0, pl.switch_at(2), 2)};
  ParsimonOptions opts;
  const auto res = RunParsimon(pl.topo(), {f}, opts);
  ASSERT_EQ(res.size(), 1u);
  // Alone on every link, the per-link deltas include only CC ramp-up.
  EXPECT_GE(res[0].slowdown, 1.0);
  EXPECT_LT(res[0].slowdown, 2.5);
}

TEST(Parsimon, ResultsAlignWithFlows) {
  ParkingLot pl(2, GbpsToBpns(10), 1000, /*hosts_at_ends=*/true);
  std::vector<Flow> flows;
  for (int i = 0; i < 10; ++i) {
    flows.push_back(Flow{static_cast<FlowId>(i), pl.switch_at(0), pl.switch_at(2),
                         1000 * (i + 1), i * 1000,
                         pl.RouteBetween(pl.switch_at(0), 0, pl.switch_at(2), 2)});
  }
  ParsimonOptions opts;
  const auto res = RunParsimon(pl.topo(), flows, opts);
  ASSERT_EQ(res.size(), flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_EQ(res[i].id, flows[i].id);
    EXPECT_EQ(res[i].size, flows[i].size);
    EXPECT_EQ(res[i].ideal_fct, IdealFct(pl.topo(), flows[i].path, flows[i].size));
  }
}

TEST(Parsimon, DeltaSummingOvercountsTransportLimitedFlows) {
  // The paper's Table 5 insight: when the init window (not congestion)
  // limits a flow, Parsimon counts the window delay once per link, so a
  // longer path means more over-counting relative to the true simulation.
  ParkingLot pl(6, GbpsToBpns(10), 5000, /*hosts_at_ends=*/true);
  NetConfig cfg;
  cfg.init_window = 5 * kKB;  // well below path BDP
  std::vector<Flow> flows;
  for (int i = 0; i < 20; ++i) {
    flows.push_back(Flow{static_cast<FlowId>(i), pl.switch_at(0), pl.switch_at(6),
                         60 * kKB, i * 500 * kUs,
                         pl.RouteBetween(pl.switch_at(0), 0, pl.switch_at(6), 6)});
  }
  ParsimonOptions popts;
  popts.cfg = cfg;
  const auto parsimon = RunParsimon(pl.topo(), flows, popts);
  const auto truth = RunPacketSim(pl.topo(), flows, cfg);
  double parsimon_mean = 0.0, truth_mean = 0.0;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    parsimon_mean += parsimon[i].slowdown;
    truth_mean += truth[i].slowdown;
  }
  EXPECT_GT(parsimon_mean, truth_mean * 1.3);
}

TEST(Parsimon, TracksGroundTruthOnRealWorkloadCoarsely) {
  const FatTree ft(FatTreeConfig::Small(2.0));
  const auto tm = TrafficMatrix::MatrixB(ft.num_racks(), ft.config().racks_per_pod);
  const auto sizes = MakeWebServer();
  WorkloadSpec spec;
  spec.num_flows = 400;
  spec.max_load = 0.4;
  spec.seed = 17;
  const auto wl = GenerateWorkload(ft, tm, *sizes, spec);

  NetConfig cfg;
  ParsimonOptions popts;
  popts.cfg = cfg;
  const auto est = RunParsimon(ft.topo(), wl.flows, popts);
  const auto truth = RunPacketSim(ft.topo(), wl.flows, cfg);

  std::vector<double> est_sldn, true_sldn;
  for (std::size_t i = 0; i < wl.flows.size(); ++i) {
    est_sldn.push_back(est[i].slowdown);
    true_sldn.push_back(truth[i].slowdown);
  }
  const double p99_est = Percentile(est_sldn, 99);
  const double p99_true = Percentile(true_sldn, 99);
  // Parsimon is approximate but must be the right order of magnitude.
  EXPECT_GT(p99_est, p99_true * 0.4);
  EXPECT_LT(p99_est, p99_true * 4.0);
}

TEST(Parsimon, SlowdownsNeverBelowOne) {
  ParkingLot pl(2, GbpsToBpns(10), 1000, /*hosts_at_ends=*/true);
  std::vector<Flow> flows;
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    flows.push_back(Flow{static_cast<FlowId>(i), pl.switch_at(0), pl.switch_at(2),
                         100 + static_cast<Bytes>(rng.NextBounded(50000)),
                         static_cast<Ns>(rng.NextBounded(kMs)),
                         pl.RouteBetween(pl.switch_at(0), 0, pl.switch_at(2), 2)});
  }
  ParsimonOptions opts;
  for (const auto& r : RunParsimon(pl.topo(), flows, opts)) {
    EXPECT_GE(r.slowdown, 1.0);
  }
}

}  // namespace
}  // namespace m3
