#include "ml/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ml/autograd.h"
#include "ml/tensor.h"
#include "util/rng.h"

namespace m3::ml {
namespace {

std::vector<float> RandomVec(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.Normal(0.0, 1.0));
  return v;
}

void ExpectAllNear(const std::vector<float>& got, const std::vector<float>& want,
                   float tol, const char* what) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], tol * std::max(1.0f, std::abs(want[i])))
        << what << " at flat index " << i;
  }
}

// Shapes chosen to cover ragged tiles: below, at, and across the kernel's
// 4-row / 64-column blocking, plus the model's real shapes (seq x feat,
// head fc1/fc2).
struct Shape {
  int m, k, n;
};
const Shape kShapes[] = {
    {1, 1, 1},   {1, 7, 5},    {3, 5, 7},    {4, 64, 64},  {5, 67, 129},
    {8, 96, 96}, {2, 33, 400}, {17, 40, 70}, {1, 256, 400}, {6, 1010, 96},
};

// The tiled kernels reassociate the k-length reductions, so the rounding
// gap to the naive order grows ~sqrt(k): scale the 1e-5 tolerance
// accordingly for long inner dimensions.
float GemmTol(int k) { return 1e-5f * std::max(1.0f, std::sqrt(static_cast<float>(k) / 64.0f)); }

TEST(Kernels, GemmAccumMatchesNaive) {
  Rng rng(11);
  for (const Shape& s : kShapes) {
    const std::vector<float> a = RandomVec(static_cast<std::size_t>(s.m) * s.k, rng);
    const std::vector<float> b = RandomVec(static_cast<std::size_t>(s.k) * s.n, rng);
    const std::vector<float> c0 = RandomVec(static_cast<std::size_t>(s.m) * s.n, rng);
    std::vector<float> c_tiled = c0, c_naive = c0;
    kernels::GemmAccum(a.data(), b.data(), c_tiled.data(), s.m, s.k, s.n);
    kernels::GemmAccumNaive(a.data(), b.data(), c_naive.data(), s.m, s.k, s.n);
    ExpectAllNear(c_tiled, c_naive, GemmTol(s.k), "GemmAccum");
  }
}

TEST(Kernels, GemmAccumNTMatchesNaive) {
  Rng rng(12);
  for (const Shape& s : kShapes) {
    const std::vector<float> dc = RandomVec(static_cast<std::size_t>(s.m) * s.n, rng);
    const std::vector<float> b = RandomVec(static_cast<std::size_t>(s.k) * s.n, rng);
    const std::vector<float> da0 = RandomVec(static_cast<std::size_t>(s.m) * s.k, rng);
    std::vector<float> da_tiled = da0, da_naive = da0;
    kernels::GemmAccumNT(dc.data(), b.data(), da_tiled.data(), s.m, s.n, s.k);
    kernels::GemmAccumNTNaive(dc.data(), b.data(), da_naive.data(), s.m, s.n, s.k);
    ExpectAllNear(da_tiled, da_naive, GemmTol(s.n), "GemmAccumNT");
  }
}

TEST(Kernels, GemmAccumTNMatchesNaive) {
  Rng rng(13);
  for (const Shape& s : kShapes) {
    const std::vector<float> a = RandomVec(static_cast<std::size_t>(s.m) * s.k, rng);
    const std::vector<float> dc = RandomVec(static_cast<std::size_t>(s.m) * s.n, rng);
    const std::vector<float> db0 = RandomVec(static_cast<std::size_t>(s.k) * s.n, rng);
    std::vector<float> db_tiled = db0, db_naive = db0;
    kernels::GemmAccumTN(a.data(), dc.data(), db_tiled.data(), s.m, s.k, s.n);
    kernels::GemmAccumTNNaive(a.data(), dc.data(), db_naive.data(), s.m, s.k, s.n);
    ExpectAllNear(db_tiled, db_naive, GemmTol(s.m), "GemmAccumTN");
  }
}

TEST(Kernels, GemmAgainstHandComputedValues) {
  // [2,3] x [3,2] sanity check with exact values.
  const std::vector<float> a = {1, 2, 3, 4, 5, 6};
  const std::vector<float> b = {1, 0, 0, 1, 1, 1};
  std::vector<float> c(4, 0.0f);
  kernels::GemmAccum(a.data(), b.data(), c.data(), 2, 3, 2);
  EXPECT_FLOAT_EQ(c[0], 4.0f);
  EXPECT_FLOAT_EQ(c[1], 5.0f);
  EXPECT_FLOAT_EQ(c[2], 10.0f);
  EXPECT_FLOAT_EQ(c[3], 11.0f);
}

TEST(Kernels, BiasAddRows) {
  const std::vector<float> x = {1, 2, 3, 4, 5, 6};
  const std::vector<float> bias = {10, 20, 30};
  std::vector<float> out(6);
  kernels::BiasAddRows(out.data(), x.data(), bias.data(), 2, 3);
  const std::vector<float> want = {11, 22, 33, 14, 25, 36};
  EXPECT_EQ(out, want);
}

TEST(Kernels, ColSumAccum) {
  const std::vector<float> go = {1, 2, 3, 4, 5, 6};
  std::vector<float> bg = {100, 200, 300};
  kernels::ColSumAccum(bg.data(), go.data(), 2, 3);
  EXPECT_FLOAT_EQ(bg[0], 105.0f);
  EXPECT_FLOAT_EQ(bg[1], 207.0f);
  EXPECT_FLOAT_EQ(bg[2], 309.0f);
}

TEST(Kernels, SoftmaxRowsNormalizes) {
  Rng rng(14);
  std::vector<float> data = RandomVec(3 * 17, rng);
  kernels::SoftmaxRows(data.data(), 3, 17);
  for (int r = 0; r < 3; ++r) {
    float sum = 0.0f;
    for (int j = 0; j < 17; ++j) sum += data[static_cast<std::size_t>(r) * 17 + j];
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

// Graph-level parity: the same MatMul-heavy graph must produce matching
// values and parameter gradients under the tiled and naive kernel paths.
TEST(Kernels, GraphParityTiledVsNaive) {
  struct Result {
    float loss;
    Tensor grad_w, grad_b;
  };
  auto run = [](bool tiled) -> Result {
    kernels::SetUseTiled(tiled);
    Rng rng(15);
    Parameter w("w", Tensor::Randn(13, 9, rng, 0.5f));
    Parameter b("b", Tensor::Randn(1, 9, rng, 0.5f));
    const Tensor x = Tensor::Randn(7, 13, rng, 1.0f);
    Tensor target = Tensor::Randn(7, 9, rng, 1.0f);
    Tensor mask(7, 9);
    mask.Fill(1.0f);
    Graph g;
    const Var h = g.Add(g.MatMul(g.Input(x), g.Param(&w)), g.Param(&b));
    const Var loss = g.MseLoss(g.Relu(h), g.Input(target), g.Input(mask));
    g.Backward(loss);
    kernels::SetUseTiled(true);
    return {g.value(loss).at(0, 0), w.grad, b.grad};
  };
  const Result tiled = run(true);
  const Result naive = run(false);
  EXPECT_NEAR(tiled.loss, naive.loss, 1e-5f);
  ExpectAllNear(tiled.grad_w.vec(), naive.grad_w.vec(), 1e-5f, "grad_w");
  ExpectAllNear(tiled.grad_b.vec(), naive.grad_b.vec(), 1e-5f, "grad_b");
}

}  // namespace
}  // namespace m3::ml
