#include "ml/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "ml/autograd.h"
#include "ml/tensor.h"
#include "util/rng.h"

namespace m3::ml {
namespace {

using kernels::KernelImpl;

std::vector<float> RandomVec(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.Normal(0.0, 1.0));
  return v;
}

template <typename GotVec, typename WantVec>
void ExpectAllNear(const GotVec& got, const WantVec& want, float tol, const char* what) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], tol * std::max(1.0f, std::abs(want[i])))
        << what << " at flat index " << i;
  }
}

// Restores the previously active implementation on scope exit so tests
// can't leak a forced impl into each other.
class ImplGuard {
 public:
  explicit ImplGuard(KernelImpl impl) : prev_(kernels::GetKernelImpl()) {
    installed_ = kernels::SetKernelImpl(impl);
  }
  ~ImplGuard() { kernels::SetKernelImpl(prev_); }
  KernelImpl installed() const { return installed_; }

 private:
  KernelImpl prev_;
  KernelImpl installed_;
};

std::vector<KernelImpl> AvailableImpls() {
  std::vector<KernelImpl> impls;
  for (KernelImpl impl : {KernelImpl::kNaive, KernelImpl::kTiled, KernelImpl::kAvx2,
                          KernelImpl::kAvx512}) {
    if (kernels::KernelImplAvailable(impl)) impls.push_back(impl);
  }
  return impls;
}

// Shapes chosen to cover ragged tiles: below, at, and across every
// implementation's blocking (tiled 4x64; AVX2 strips 24/16/8 + <8 mask,
// GEMV strips 64/32/8; AVX-512 strips 48/32/16 + k-mask, GEMV 128/64/16),
// plus the model's real shapes (seq x feat, head fc1/fc2, seq_in_proj).
struct Shape {
  int m, k, n;
};
const Shape kShapes[] = {
    {1, 1, 1},     {1, 7, 5},      {3, 5, 7},    {2, 5, 9},    {4, 64, 64},
    {5, 67, 129},  {8, 96, 96},    {2, 33, 400}, {17, 40, 70}, {3, 100, 23},
    {9, 17, 49},   {4, 3, 48},     {5, 130, 33}, {7, 12, 31},  {1, 256, 400},
    {1, 31, 67},   {1, 9, 130},    {1, 1127, 256}, {6, 1010, 96}, {8, 1010, 96},
};

// The blocked/SIMD kernels reassociate the reduction over the inner
// dimension (and FMA contracts rounding steps), so the gap to the naive
// order grows ~sqrt(len): scale the 1e-5 tolerance accordingly.
float GemmTol(int len) {
  return 1e-5f * std::max(1.0f, std::sqrt(static_cast<float>(len) / 64.0f));
}

TEST(Kernels, GemmAccumParityAllImpls) {
  for (KernelImpl impl : AvailableImpls()) {
    ImplGuard guard(impl);
    ASSERT_EQ(guard.installed(), impl);
    Rng rng(11);
    for (const Shape& s : kShapes) {
      const std::vector<float> a = RandomVec(static_cast<std::size_t>(s.m) * s.k, rng);
      const std::vector<float> b = RandomVec(static_cast<std::size_t>(s.k) * s.n, rng);
      const std::vector<float> c0 = RandomVec(static_cast<std::size_t>(s.m) * s.n, rng);
      std::vector<float> c_got = c0, c_ref = c0;
      kernels::GemmAccum(a.data(), b.data(), c_got.data(), s.m, s.k, s.n);
      kernels::GemmAccumNaive(a.data(), b.data(), c_ref.data(), s.m, s.k, s.n);
      ExpectAllNear(c_got, c_ref, GemmTol(s.k),
                    (std::string("GemmAccum/") + kernels::KernelImplName(impl)).c_str());
    }
  }
}

TEST(Kernels, GemmAccumNTParityAllImpls) {
  for (KernelImpl impl : AvailableImpls()) {
    ImplGuard guard(impl);
    Rng rng(12);
    for (const Shape& s : kShapes) {
      const std::vector<float> dc = RandomVec(static_cast<std::size_t>(s.m) * s.n, rng);
      const std::vector<float> b = RandomVec(static_cast<std::size_t>(s.k) * s.n, rng);
      const std::vector<float> da0 = RandomVec(static_cast<std::size_t>(s.m) * s.k, rng);
      std::vector<float> da_got = da0, da_ref = da0;
      kernels::GemmAccumNT(dc.data(), b.data(), da_got.data(), s.m, s.n, s.k);
      kernels::GemmAccumNTNaive(dc.data(), b.data(), da_ref.data(), s.m, s.n, s.k);
      ExpectAllNear(da_got, da_ref, GemmTol(s.n),
                    (std::string("GemmAccumNT/") + kernels::KernelImplName(impl)).c_str());
    }
  }
}

TEST(Kernels, GemmAccumTNParityAllImpls) {
  for (KernelImpl impl : AvailableImpls()) {
    ImplGuard guard(impl);
    Rng rng(13);
    for (const Shape& s : kShapes) {
      const std::vector<float> a = RandomVec(static_cast<std::size_t>(s.m) * s.k, rng);
      const std::vector<float> dc = RandomVec(static_cast<std::size_t>(s.m) * s.n, rng);
      const std::vector<float> db0 = RandomVec(static_cast<std::size_t>(s.k) * s.n, rng);
      std::vector<float> db_got = db0, db_ref = db0;
      kernels::GemmAccumTN(a.data(), dc.data(), db_got.data(), s.m, s.k, s.n);
      kernels::GemmAccumTNNaive(a.data(), dc.data(), db_ref.data(), s.m, s.k, s.n);
      ExpectAllNear(db_got, db_ref, GemmTol(s.m),
                    (std::string("GemmAccumTN/") + kernels::KernelImplName(impl)).c_str());
    }
  }
}

// SIMD kernels must tolerate any pointer alignment: run one ragged shape
// with every operand shifted off its allocation by one float.
TEST(Kernels, GemmParityUnalignedPointers) {
  const Shape s = {5, 67, 129};
  for (KernelImpl impl : AvailableImpls()) {
    ImplGuard guard(impl);
    Rng rng(21);
    std::vector<float> a = RandomVec(static_cast<std::size_t>(s.m) * s.k + 1, rng);
    std::vector<float> b = RandomVec(static_cast<std::size_t>(s.k) * s.n + 1, rng);
    std::vector<float> c0 = RandomVec(static_cast<std::size_t>(s.m) * s.n + 1, rng);
    std::vector<float> c_got = c0, c_ref = c0;
    kernels::GemmAccum(a.data() + 1, b.data() + 1, c_got.data() + 1, s.m, s.k, s.n);
    kernels::GemmAccumNaive(a.data() + 1, b.data() + 1, c_ref.data() + 1, s.m, s.k, s.n);
    ExpectAllNear(c_got, c_ref, GemmTol(s.k), "GemmAccum unaligned");
  }
}

TEST(Kernels, GemmAgainstHandComputedValues) {
  // [2,3] x [3,2] sanity check with exact values, per implementation.
  for (KernelImpl impl : AvailableImpls()) {
    ImplGuard guard(impl);
    const std::vector<float> a = {1, 2, 3, 4, 5, 6};
    const std::vector<float> b = {1, 0, 0, 1, 1, 1};
    std::vector<float> c(4, 0.0f);
    kernels::GemmAccum(a.data(), b.data(), c.data(), 2, 3, 2);
    EXPECT_FLOAT_EQ(c[0], 4.0f);
    EXPECT_FLOAT_EQ(c[1], 5.0f);
    EXPECT_FLOAT_EQ(c[2], 10.0f);
    EXPECT_FLOAT_EQ(c[3], 11.0f);
  }
}

// Elementwise kernels across implementations. Sizes cover full vectors,
// masked tails, and sub-vector lengths.
const int kElemSizes[] = {1, 3, 7, 8, 9, 16, 31, 64, 100, 257};

TEST(Kernels, BiasAddRowsParityAllImpls) {
  for (KernelImpl impl : AvailableImpls()) {
    ImplGuard guard(impl);
    Rng rng(31);
    for (int cols : kElemSizes) {
      const int rows = 3;
      const std::vector<float> x = RandomVec(static_cast<std::size_t>(rows) * cols, rng);
      const std::vector<float> bias = RandomVec(cols, rng);
      std::vector<float> got(static_cast<std::size_t>(rows) * cols);
      kernels::BiasAddRows(got.data(), x.data(), bias.data(), rows, cols);
      for (int r = 0; r < rows; ++r)
        for (int j = 0; j < cols; ++j)
          EXPECT_EQ(got[static_cast<std::size_t>(r) * cols + j],
                    x[static_cast<std::size_t>(r) * cols + j] + bias[j])
              << kernels::KernelImplName(impl) << " cols=" << cols;
    }
  }
}

TEST(Kernels, ColSumAccumParityAllImpls) {
  for (KernelImpl impl : AvailableImpls()) {
    ImplGuard guard(impl);
    Rng rng(32);
    for (int cols : kElemSizes) {
      const int rows = 5;
      const std::vector<float> go = RandomVec(static_cast<std::size_t>(rows) * cols, rng);
      const std::vector<float> bg0 = RandomVec(cols, rng);
      std::vector<float> got = bg0, ref = bg0;
      kernels::ColSumAccum(got.data(), go.data(), rows, cols);
      for (int r = 0; r < rows; ++r)
        for (int j = 0; j < cols; ++j) ref[j] += go[static_cast<std::size_t>(r) * cols + j];
      // Row-order accumulation per column is part of the contract, so the
      // result is bitwise equal across implementations.
      for (int j = 0; j < cols; ++j)
        EXPECT_EQ(got[j], ref[j]) << kernels::KernelImplName(impl) << " cols=" << cols;
    }
  }
}

TEST(Kernels, AxpyAccumParityAllImpls) {
  for (KernelImpl impl : AvailableImpls()) {
    ImplGuard guard(impl);
    Rng rng(33);
    for (int size : kElemSizes) {
      const std::vector<float> x = RandomVec(size, rng);
      const std::vector<float> y0 = RandomVec(size, rng);
      std::vector<float> got = y0;
      kernels::AxpyAccum(got.data(), x.data(), 0.37f, size);
      std::vector<float> ref = y0;
      for (int i = 0; i < size; ++i) ref[i] += 0.37f * x[i];
      // FMA contraction may differ from mul+add by one rounding step.
      ExpectAllNear(got, ref, 1e-6f, kernels::KernelImplName(impl));
    }
  }
}

TEST(Kernels, AddAndZeroParityAllImpls) {
  for (KernelImpl impl : AvailableImpls()) {
    ImplGuard guard(impl);
    Rng rng(34);
    for (int size : kElemSizes) {
      const std::vector<float> src0 = RandomVec(size, rng);
      const std::vector<float> dst0 = RandomVec(size, rng);
      std::vector<float> dst = dst0, src = src0;
      kernels::AddAndZero(dst.data(), src.data(), size);
      for (int i = 0; i < size; ++i) {
        EXPECT_EQ(dst[i], dst0[i] + src0[i]) << kernels::KernelImplName(impl);
        EXPECT_EQ(src[i], 0.0f);
      }
    }
  }
}

// ReduceScaleAndZero underpins thread-count determinism: it must be
// bitwise identical across implementations (lanes are independent
// elements; the per-element addition order is the srcs order).
TEST(Kernels, ReduceScaleAndZeroBitwiseAcrossImpls) {
  Rng rng(35);
  for (int size : kElemSizes) {
    std::vector<std::vector<float>> srcs0;
    for (int s = 0; s < 3; ++s) srcs0.push_back(RandomVec(size, rng));
    std::vector<float> ref;
    bool have_ref = false;
    for (KernelImpl impl : AvailableImpls()) {
      ImplGuard guard(impl);
      std::vector<std::vector<float>> srcs = srcs0;
      std::vector<float*> ptrs;
      for (auto& s : srcs) ptrs.push_back(s.data());
      std::vector<float> dst(size, -1.0f);
      kernels::ReduceScaleAndZero(dst.data(), ptrs.data(), ptrs.size(), size, 0.125f);
      for (auto& s : srcs)
        for (float v : s) EXPECT_EQ(v, 0.0f);
      if (!have_ref) {
        ref = dst;
        have_ref = true;
      } else {
        for (int i = 0; i < size; ++i)
          EXPECT_EQ(dst[i], ref[i]) << kernels::KernelImplName(impl) << " i=" << i;
      }
    }
  }
}

TEST(Kernels, FillRowsWithBias) {
  const std::vector<float> bias = {10, 20, 30};
  std::vector<float> out(6, -1.0f);
  kernels::FillRowsWithBias(out.data(), bias.data(), 2, 3);
  const std::vector<float> want = {10, 20, 30, 10, 20, 30};
  EXPECT_EQ(out, want);
}

TEST(Kernels, SoftmaxRowsNormalizes) {
  Rng rng(14);
  std::vector<float> data = RandomVec(3 * 17, rng);
  kernels::SoftmaxRows(data.data(), 3, 17);
  for (int r = 0; r < 3; ++r) {
    float sum = 0.0f;
    for (int j = 0; j < 17; ++j) sum += data[static_cast<std::size_t>(r) * 17 + j];
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

// The fused scaled softmax must match scale-then-softmax.
TEST(Kernels, SoftmaxScaledRowsMatchesScaleThenSoftmax) {
  Rng rng(41);
  const float scale = 0.5f;
  std::vector<float> fused = RandomVec(4 * 19, rng);
  std::vector<float> ref = fused;
  kernels::SoftmaxScaledRows(fused.data(), 4, 19, scale);
  for (float& v : ref) v *= scale;
  kernels::SoftmaxRows(ref.data(), 4, 19);
  ExpectAllNear(fused, ref, 1e-5f, "SoftmaxScaledRows");
}

TEST(Kernels, SoftmaxScaledBackwardMatchesScaledReference) {
  Rng rng(42);
  const int rows = 3, cols = 11;
  const float scale = 0.25f;
  std::vector<float> y = RandomVec(static_cast<std::size_t>(rows) * cols, rng);
  kernels::SoftmaxRows(y.data(), rows, cols);  // valid softmax output
  const std::vector<float> go = RandomVec(static_cast<std::size_t>(rows) * cols, rng);
  std::vector<float> ga_fused(static_cast<std::size_t>(rows) * cols, 0.0f);
  std::vector<float> ga_ref = ga_fused;
  kernels::SoftmaxScaledBackwardAccum(ga_fused.data(), go.data(), y.data(), rows, cols,
                                      scale);
  kernels::SoftmaxBackwardAccum(ga_ref.data(), go.data(), y.data(), rows, cols);
  for (float& v : ga_ref) v *= scale;
  ExpectAllNear(ga_fused, ga_ref, 1e-5f, "SoftmaxScaledBackwardAccum");
}

TEST(Kernels, ReluAndGeluBackwardIntoMatchAccum) {
  Rng rng(43);
  const int size = 57;
  const std::vector<float> x = RandomVec(size, rng);
  const std::vector<float> go = RandomVec(size, rng);
  std::vector<float> relu_into(size, -7.0f), relu_acc(size, 0.0f);
  kernels::ReluBackwardInto(relu_into.data(), go.data(), x.data(), size);
  kernels::ReluBackwardAccum(relu_acc.data(), go.data(), x.data(), size);
  ExpectAllNear(relu_into, relu_acc, 0.0f, "ReluBackwardInto");
  std::vector<float> gelu_into(size, -7.0f), gelu_acc(size, 0.0f);
  kernels::GeluBackwardInto(gelu_into.data(), go.data(), x.data(), size);
  kernels::GeluBackwardAccum(gelu_acc.data(), go.data(), x.data(), size);
  ExpectAllNear(gelu_into, gelu_acc, 1e-6f, "GeluBackwardInto");
}

// RMS-norm forward against a direct reference, backward against central
// finite differences of the forward pass.
TEST(Kernels, RmsNormForwardAndBackward) {
  Rng rng(44);
  const int rows = 3, cols = 13;
  const float eps = 1e-6f;
  const std::vector<float> x = RandomVec(static_cast<std::size_t>(rows) * cols, rng);
  const std::vector<float> gain = RandomVec(cols, rng);
  std::vector<float> out(static_cast<std::size_t>(rows) * cols);
  std::vector<float> inv_r(rows);
  kernels::RmsNormForward(out.data(), inv_r.data(), x.data(), gain.data(), rows, cols, eps);
  for (int r = 0; r < rows; ++r) {
    float ss = 0.0f;
    for (int j = 0; j < cols; ++j) {
      const float v = x[static_cast<std::size_t>(r) * cols + j];
      ss += v * v;
    }
    const float want_ir = 1.0f / std::sqrt(ss / cols + eps);
    EXPECT_NEAR(inv_r[r], want_ir, 1e-5f);
    for (int j = 0; j < cols; ++j)
      EXPECT_NEAR(out[static_cast<std::size_t>(r) * cols + j],
                  gain[j] * x[static_cast<std::size_t>(r) * cols + j] * want_ir, 1e-5f);
  }

  const std::vector<float> go = RandomVec(static_cast<std::size_t>(rows) * cols, rng);
  std::vector<float> gx(static_cast<std::size_t>(rows) * cols, 0.0f);
  std::vector<float> ggain(cols, 0.0f);
  kernels::RmsNormBackwardAccum(gx.data(), ggain.data(), go.data(), x.data(), gain.data(),
                                inv_r.data(), rows, cols);
  // loss = sum(out * go); d loss / d x and d loss / d gain by central diff.
  auto loss_at = [&](const std::vector<float>& xv, const std::vector<float>& gv) {
    std::vector<float> o(static_cast<std::size_t>(rows) * cols);
    std::vector<float> ir(rows);
    kernels::RmsNormForward(o.data(), ir.data(), xv.data(), gv.data(), rows, cols, eps);
    double acc = 0.0;
    for (std::size_t i = 0; i < o.size(); ++i) acc += static_cast<double>(o[i]) * go[i];
    return acc;
  };
  const float h = 1e-3f;
  for (std::size_t i = 0; i < x.size(); i += 7) {
    std::vector<float> xp = x, xm = x;
    xp[i] += h;
    xm[i] -= h;
    const double want = (loss_at(xp, gain) - loss_at(xm, gain)) / (2.0 * h);
    EXPECT_NEAR(gx[i], want, 2e-2 * std::max(1.0, std::abs(want))) << "gx at " << i;
  }
  for (int j = 0; j < cols; j += 3) {
    std::vector<float> gp = gain, gm = gain;
    gp[j] += h;
    gm[j] -= h;
    const double want = (loss_at(x, gp) - loss_at(x, gm)) / (2.0 * h);
    EXPECT_NEAR(ggain[j], want, 2e-2 * std::max(1.0, std::abs(want))) << "ggain at " << j;
  }
}

// ----- implementation selection API -----

TEST(KernelDispatch, ParseKernelImpl) {
  KernelImpl impl;
  EXPECT_TRUE(kernels::ParseKernelImpl("naive", &impl));
  EXPECT_EQ(impl, KernelImpl::kNaive);
  EXPECT_TRUE(kernels::ParseKernelImpl("tiled", &impl));
  EXPECT_EQ(impl, KernelImpl::kTiled);
  EXPECT_TRUE(kernels::ParseKernelImpl("avx2", &impl));
  EXPECT_EQ(impl, KernelImpl::kAvx2);
  EXPECT_TRUE(kernels::ParseKernelImpl("avx512", &impl));
  EXPECT_EQ(impl, KernelImpl::kAvx512);
  EXPECT_FALSE(kernels::ParseKernelImpl("sse9", &impl));
  EXPECT_FALSE(kernels::ParseKernelImpl("", &impl));
  EXPECT_FALSE(kernels::ParseKernelImpl(nullptr, &impl));
}

TEST(KernelDispatch, NameRoundTrip) {
  for (KernelImpl impl : {KernelImpl::kNaive, KernelImpl::kTiled, KernelImpl::kAvx2,
                          KernelImpl::kAvx512}) {
    KernelImpl parsed;
    ASSERT_TRUE(kernels::ParseKernelImpl(kernels::KernelImplName(impl), &parsed));
    EXPECT_EQ(parsed, impl);
  }
}

TEST(KernelDispatch, ResolveHonorsAvailableRequests) {
  // naive and tiled are always available, so forcing them must stick.
  EXPECT_EQ(kernels::ResolveKernelImpl("naive"), KernelImpl::kNaive);
  EXPECT_EQ(kernels::ResolveKernelImpl("tiled"), KernelImpl::kTiled);
}

TEST(KernelDispatch, ResolveFallsBackForUnavailableOrGarbage) {
  const KernelImpl best = kernels::ResolveKernelImpl(nullptr);
  EXPECT_TRUE(kernels::KernelImplAvailable(best));
  EXPECT_NE(best, KernelImpl::kNaive);  // tiled at minimum
  EXPECT_EQ(kernels::ResolveKernelImpl(""), best);
  EXPECT_EQ(kernels::ResolveKernelImpl("bogus-isa"), best);
  // Requesting every tier resolves to something available.
  for (const char* name : {"naive", "tiled", "avx2", "avx512"}) {
    EXPECT_TRUE(kernels::KernelImplAvailable(kernels::ResolveKernelImpl(name))) << name;
  }
}

TEST(KernelDispatch, SetReturnsInstalledImpl) {
  const KernelImpl prev = kernels::GetKernelImpl();
  for (KernelImpl impl : AvailableImpls()) {
    EXPECT_EQ(kernels::SetKernelImpl(impl), impl);
    EXPECT_EQ(kernels::GetKernelImpl(), impl);
  }
  // Unavailable requests install the best available tier instead.
  if (!kernels::KernelImplAvailable(KernelImpl::kAvx512)) {
    const KernelImpl got = kernels::SetKernelImpl(KernelImpl::kAvx512);
    EXPECT_TRUE(kernels::KernelImplAvailable(got));
  }
  kernels::SetKernelImpl(prev);
}

// Graph-level parity: the same MatMul-heavy graph must produce matching
// values and parameter gradients under every kernel implementation.
TEST(Kernels, GraphParityAcrossImpls) {
  struct Result {
    float loss;
    Tensor grad_w, grad_b;
  };
  auto run = [](KernelImpl impl) -> Result {
    ImplGuard guard(impl);
    Rng rng(15);
    Parameter w("w", Tensor::Randn(13, 9, rng, 0.5f));
    Parameter b("b", Tensor::Randn(1, 9, rng, 0.5f));
    const Tensor x = Tensor::Randn(7, 13, rng, 1.0f);
    Tensor target = Tensor::Randn(7, 9, rng, 1.0f);
    Tensor mask(7, 9);
    mask.Fill(1.0f);
    Graph g;
    const Var h = g.Add(g.MatMul(g.Input(x), g.Param(&w)), g.Param(&b));
    const Var loss = g.MseLoss(g.Relu(h), g.Input(target), g.Input(mask));
    g.Backward(loss);
    return {g.value(loss).at(0, 0), w.grad, b.grad};
  };
  const Result ref = run(KernelImpl::kNaive);
  for (KernelImpl impl : AvailableImpls()) {
    if (impl == KernelImpl::kNaive) continue;
    const Result got = run(impl);
    EXPECT_NEAR(got.loss, ref.loss, 1e-5f) << kernels::KernelImplName(impl);
    ExpectAllNear(got.grad_w.vec(), ref.grad_w.vec(), 1e-5f, "grad_w");
    ExpectAllNear(got.grad_b.vec(), ref.grad_b.vec(), 1e-5f, "grad_b");
  }
}

}  // namespace
}  // namespace m3::ml
