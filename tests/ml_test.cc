#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <functional>

#include "ml/autograd.h"
#include "ml/checkpoint.h"
#include "ml/layers.h"
#include "ml/optimizer.h"
#include "ml/transformer.h"

namespace m3::ml {
namespace {

// Finite-difference gradient check: builds the graph twice per perturbed
// element via `forward`, which maps a parameter to a scalar loss.
void CheckParamGradient(Parameter& p,
                        const std::function<float(Graph&, Var)>& loss_of_param,
                        float tol = 2e-2f) {
  // Analytic gradient.
  p.ZeroGrad();
  {
    Graph g;
    Var in = g.Param(&p);
    // Build loss and backward inside loss_of_param.
    loss_of_param(g, in);
  }
  const Tensor analytic = p.grad;

  const float eps = 1e-2f;
  for (int r = 0; r < p.value.rows(); ++r) {
    for (int c = 0; c < p.value.cols(); ++c) {
      const float orig = p.value.at(r, c);
      p.value.at(r, c) = orig + eps;
      float up;
      {
        Graph g;
        up = loss_of_param(g, g.Param(&p));
      }
      p.value.at(r, c) = orig - eps;
      float down;
      {
        Graph g;
        down = loss_of_param(g, g.Param(&p));
      }
      p.value.at(r, c) = orig;
      const float numeric = (up - down) / (2.0f * eps);
      EXPECT_NEAR(analytic.at(r, c), numeric, tol * std::max(1.0f, std::abs(numeric)))
          << "at (" << r << "," << c << ")";
    }
  }
}

Tensor Arange(int rows, int cols, float scale = 0.1f) {
  Tensor t(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      t.at(r, c) = scale * static_cast<float>((r * cols + c) % 7 - 3);
    }
  }
  return t;
}

TEST(Autograd, ForwardMatMulValues) {
  Graph g;
  Tensor a(2, 3), b(3, 2);
  a.vec() = {1, 2, 3, 4, 5, 6};
  b.vec() = {1, 0, 0, 1, 1, 1};
  const Var out = g.MatMul(g.Input(a), g.Input(b));
  EXPECT_FLOAT_EQ(g.value(out).at(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(g.value(out).at(0, 1), 5.0f);
  EXPECT_FLOAT_EQ(g.value(out).at(1, 0), 10.0f);
  EXPECT_FLOAT_EQ(g.value(out).at(1, 1), 11.0f);
}

TEST(Autograd, SoftmaxRowsSumToOne) {
  Graph g;
  const Var out = g.Softmax(g.Input(Arange(3, 5, 1.0f)));
  for (int r = 0; r < 3; ++r) {
    float sum = 0.0f;
    for (int c = 0; c < 5; ++c) sum += g.value(out).at(r, c);
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
  }
}

TEST(Autograd, GradientMatMul) {
  Rng rng(1);
  Parameter p("p", Tensor::Randn(3, 4, rng, 0.5f));
  const Tensor x = Arange(2, 3);
  const Tensor t = Arange(2, 4, 0.05f);
  Tensor mask(2, 4);
  mask.Fill(1.0f);
  CheckParamGradient(p, [&](Graph& g, Var pv) {
    const Var loss = g.MseLoss(g.MatMul(g.Input(x), pv), g.Input(t), g.Input(mask));
    const float v = g.value(loss).at(0, 0);
    g.Backward(loss);
    return v;
  });
}

TEST(Autograd, GradientThroughSoftmaxAndScale) {
  Rng rng(2);
  Parameter p("p", Tensor::Randn(3, 3, rng, 0.5f));
  const Tensor t = Arange(3, 3, 0.1f);
  Tensor mask(3, 3);
  mask.Fill(1.0f);
  CheckParamGradient(p, [&](Graph& g, Var pv) {
    const Var loss =
        g.MseLoss(g.Softmax(g.Scale(pv, 2.0f)), g.Input(t), g.Input(mask));
    const float v = g.value(loss).at(0, 0);
    g.Backward(loss);
    return v;
  });
}

TEST(Autograd, GradientRmsNorm) {
  Rng rng(3);
  Parameter p("p", Tensor::Randn(2, 6, rng, 0.8f));
  Parameter gain("g", Tensor::Randn(1, 6, rng, 0.2f));
  for (float& v : gain.value.vec()) v += 1.0f;
  const Tensor t = Arange(2, 6, 0.1f);
  Tensor mask(2, 6);
  mask.Fill(1.0f);
  CheckParamGradient(p, [&](Graph& g, Var pv) {
    const Var loss = g.MseLoss(g.RmsNorm(pv, g.Param(&gain)), g.Input(t), g.Input(mask));
    const float v = g.value(loss).at(0, 0);
    g.Backward(loss);
    return v;
  });
}

TEST(Autograd, GradientGeluTanhReluChain) {
  Rng rng(4);
  Parameter p("p", Tensor::Randn(2, 5, rng, 0.7f));
  const Tensor t = Arange(2, 5, 0.1f);
  Tensor mask(2, 5);
  mask.Fill(1.0f);
  CheckParamGradient(p, [&](Graph& g, Var pv) {
    const Var h = g.Tanh(g.Gelu(pv));
    const Var loss = g.MseLoss(g.Relu(h), g.Input(t), g.Input(mask));
    const float v = g.value(loss).at(0, 0);
    g.Backward(loss);
    return v;
  });
}

TEST(Autograd, GradientConcatSliceMeanRows) {
  Rng rng(5);
  Parameter p("p", Tensor::Randn(3, 4, rng, 0.5f));
  const Tensor t = Arange(1, 6, 0.1f);
  Tensor mask(1, 6);
  mask.Fill(1.0f);
  CheckParamGradient(p, [&](Graph& g, Var pv) {
    const Var left = g.SliceCols(pv, 0, 2);
    const Var all = g.ConcatCols({pv, left});
    const Var loss = g.MseLoss(g.MeanRows(all), g.Input(t), g.Input(mask));
    const float v = g.value(loss).at(0, 0);
    g.Backward(loss);
    return v;
  });
}

TEST(Autograd, GradientL1LossWithMask) {
  Rng rng(6);
  Parameter p("p", Tensor::Randn(2, 4, rng, 0.5f));
  Tensor t(2, 4);
  t.Fill(10.0f);  // keep pred-target well away from the kink at 0
  Tensor mask(2, 4);
  mask.Fill(1.0f);
  mask.at(0, 1) = 0.0f;  // masked entries must get zero gradient
  CheckParamGradient(p, [&](Graph& g, Var pv) {
    const Var loss = g.L1Loss(pv, g.Input(t), g.Input(mask));
    const float v = g.value(loss).at(0, 0);
    g.Backward(loss);
    return v;
  });
  // Explicitly verify the masked slot got no gradient.
  p.ZeroGrad();
  {
    Graph g;
    const Var loss = g.L1Loss(g.Param(&p), g.Input(t), g.Input(mask));
    g.Backward(loss);
  }
  EXPECT_FLOAT_EQ(p.grad.at(0, 1), 0.0f);
}

TEST(Autograd, GradientTransposeAndAddBroadcast) {
  Rng rng(7);
  Parameter bias("b", Tensor::Randn(1, 3, rng, 0.5f));
  const Tensor x = Arange(4, 3);
  const Tensor t = Arange(4, 3, 0.2f);
  Tensor mask(4, 3);
  mask.Fill(1.0f);
  CheckParamGradient(bias, [&](Graph& g, Var pv) {
    const Var out = g.Add(g.Input(x), pv);
    const Var loss = g.MseLoss(out, g.Input(t), g.Input(mask));
    const float v = g.value(loss).at(0, 0);
    g.Backward(loss);
    return v;
  });
}

TEST(Autograd, ShapeErrorsThrow) {
  Graph g;
  const Var a = g.Input(Tensor::Zeros(2, 3));
  const Var b = g.Input(Tensor::Zeros(2, 3));
  EXPECT_THROW(g.MatMul(a, b), std::invalid_argument);
  EXPECT_THROW(g.SliceCols(a, 2, 5), std::invalid_argument);
  EXPECT_THROW(g.ConcatCols({}), std::invalid_argument);
  const Var c = g.Input(Tensor::Zeros(1, 2));
  EXPECT_THROW(g.Sub(a, c), std::invalid_argument);
}

TEST(Autograd, BackwardTwiceThrows) {
  Graph g;
  Tensor ones(1, 1);
  ones.Fill(1.0f);
  const Var loss = g.MseLoss(g.Input(ones), g.Input(Tensor::Zeros(1, 1)), g.Input(ones));
  g.Backward(loss);
  EXPECT_THROW(g.Backward(loss), std::logic_error);
}

// ----------------------------------------------------------- fused ops ---
//
// Each fused tape op must match the unfused chain it replaced — same
// forward values and same parameter gradients (within float tolerance;
// fusion changes the accumulation order, so bitwise equality is not
// expected).

void ExpectTensorsNear(const Tensor& got, const Tensor& want, float tol, const char* what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(got.vec()[i], want.vec()[i], tol) << what << " at element " << i;
  }
}

TEST(AutogradFused, LinearMatchesMatMulAddActChain) {
  Rng rng(21);
  const Tensor x = Tensor::Randn(5, 7, rng, 1.0f);
  const Tensor t = Tensor::Randn(5, 4, rng, 1.0f);
  Tensor mask(5, 4);
  mask.Fill(1.0f);
  for (Act act : {Act::kNone, Act::kRelu, Act::kGelu}) {
    Parameter w("w", Tensor::Randn(7, 4, rng, 0.5f));
    Parameter b("b", Tensor::Randn(1, 4, rng, 0.5f));

    Tensor ref_val, ref_gw, ref_gb;
    {
      w.ZeroGrad();
      b.ZeroGrad();
      Graph g;
      Var out = g.Add(g.MatMul(g.Input(x), g.Param(&w)), g.Param(&b));
      if (act == Act::kRelu) out = g.Relu(out);
      if (act == Act::kGelu) out = g.Gelu(out);
      const Var loss = g.MseLoss(out, g.Input(t), g.Input(mask));
      ref_val = g.value(out);
      g.Backward(loss);
      ref_gw = w.grad;
      ref_gb = b.grad;
    }

    w.ZeroGrad();
    b.ZeroGrad();
    Graph g;
    const Var out = g.Linear(g.Input(x), g.Param(&w), g.Param(&b), act);
    const Var loss = g.MseLoss(out, g.Input(t), g.Input(mask));
    ExpectTensorsNear(g.value(out), ref_val, 1e-5f, "Linear forward");
    g.Backward(loss);
    ExpectTensorsNear(w.grad, ref_gw, 1e-5f, "Linear grad_w");
    ExpectTensorsNear(b.grad, ref_gb, 1e-5f, "Linear grad_b");
  }
}

TEST(AutogradFused, MatMulNTMatchesMatMulTranspose) {
  Rng rng(22);
  Parameter a("a", Tensor::Randn(4, 6, rng, 0.7f));
  Parameter b("b", Tensor::Randn(3, 6, rng, 0.7f));
  const Tensor t = Tensor::Randn(4, 3, rng, 1.0f);
  Tensor mask(4, 3);
  mask.Fill(1.0f);

  Tensor ref_val, ref_ga, ref_gb;
  {
    a.ZeroGrad();
    b.ZeroGrad();
    Graph g;
    const Var out = g.MatMul(g.Param(&a), g.Transpose(g.Param(&b)));
    const Var loss = g.MseLoss(out, g.Input(t), g.Input(mask));
    ref_val = g.value(out);
    g.Backward(loss);
    ref_ga = a.grad;
    ref_gb = b.grad;
  }

  a.ZeroGrad();
  b.ZeroGrad();
  Graph g;
  const Var out = g.MatMulNT(g.Param(&a), g.Param(&b));
  const Var loss = g.MseLoss(out, g.Input(t), g.Input(mask));
  ExpectTensorsNear(g.value(out), ref_val, 1e-5f, "MatMulNT forward");
  g.Backward(loss);
  ExpectTensorsNear(a.grad, ref_ga, 1e-5f, "MatMulNT grad_a");
  ExpectTensorsNear(b.grad, ref_gb, 1e-5f, "MatMulNT grad_b");
}

TEST(AutogradFused, SoftmaxScaledMatchesScaleThenSoftmax) {
  Rng rng(23);
  Parameter p("p", Tensor::Randn(3, 5, rng, 1.2f));
  const Tensor t = Arange(3, 5, 0.1f);
  Tensor mask(3, 5);
  mask.Fill(1.0f);
  const float scale = 0.37f;

  Tensor ref_val, ref_gp;
  {
    p.ZeroGrad();
    Graph g;
    const Var out = g.Softmax(g.Scale(g.Param(&p), scale));
    const Var loss = g.MseLoss(out, g.Input(t), g.Input(mask));
    ref_val = g.value(out);
    g.Backward(loss);
    ref_gp = p.grad;
  }

  p.ZeroGrad();
  Graph g;
  const Var out = g.SoftmaxScaled(g.Param(&p), scale);
  const Var loss = g.MseLoss(out, g.Input(t), g.Input(mask));
  ExpectTensorsNear(g.value(out), ref_val, 1e-6f, "SoftmaxScaled forward");
  g.Backward(loss);
  ExpectTensorsNear(p.grad, ref_gp, 1e-6f, "SoftmaxScaled grad");
}

TEST(AutogradFused, SliceRowsMatchesTransposeSliceColsChain) {
  Rng rng(24);
  Parameter p("p", Tensor::Randn(6, 4, rng, 0.9f));
  const Tensor t = Arange(3, 4, 0.1f);
  Tensor mask(3, 4);
  mask.Fill(1.0f);

  Tensor ref_val, ref_gp;
  {
    p.ZeroGrad();
    Graph g;
    // The old positional-embedding pattern: transpose, slice columns,
    // transpose back.
    const Var out = g.Transpose(g.SliceCols(g.Transpose(g.Param(&p)), 2, 3));
    const Var loss = g.MseLoss(out, g.Input(t), g.Input(mask));
    ref_val = g.value(out);
    g.Backward(loss);
    ref_gp = p.grad;
  }

  p.ZeroGrad();
  Graph g;
  const Var out = g.SliceRows(g.Param(&p), 2, 3);
  const Var loss = g.MseLoss(out, g.Input(t), g.Input(mask));
  ExpectTensorsNear(g.value(out), ref_val, 0.0f, "SliceRows forward");
  g.Backward(loss);
  ExpectTensorsNear(p.grad, ref_gp, 1e-7f, "SliceRows grad");
}

TEST(AutogradFused, SliceRowsOutOfRangeThrows) {
  Graph g;
  const Var a = g.Input(Tensor::Zeros(4, 3));
  EXPECT_THROW(g.SliceRows(a, 3, 2), std::invalid_argument);
  EXPECT_THROW(g.SliceRows(a, -1, 2), std::invalid_argument);
  EXPECT_THROW(g.SliceRows(a, 0, 0), std::invalid_argument);
}

TEST(AutogradFused, LinearGradientAgainstFiniteDifferences) {
  Rng rng(25);
  Parameter w("w", Tensor::Randn(3, 4, rng, 0.5f));
  const Tensor x = Arange(2, 3);
  const Tensor t = Arange(2, 4, 0.05f);
  Tensor mask(2, 4);
  mask.Fill(1.0f);
  Parameter b("b", Tensor::Randn(1, 4, rng, 0.3f));
  CheckParamGradient(w, [&](Graph& g, Var pv) {
    const Var loss = g.MseLoss(g.Linear(g.Input(x), pv, g.Param(&b), Act::kGelu),
                               g.Input(t), g.Input(mask));
    const float v = g.value(loss).at(0, 0);
    g.Backward(loss);
    return v;
  });
}

// --------------------------------------------------------------- layers ---

TEST(Layers, LinearShapesAndParams) {
  Rng rng(11);
  Linear lin("lin", 8, 4, rng);
  Graph g;
  const Var out = lin(g, g.Input(Tensor::Zeros(3, 8)));
  EXPECT_EQ(g.value(out).rows(), 3);
  EXPECT_EQ(g.value(out).cols(), 4);
  std::vector<Parameter*> params;
  lin.CollectParams(params);
  EXPECT_EQ(params.size(), 2u);
}

TEST(Layers, MlpLearnsLinearMap) {
  // y = 2x (scalar); a tiny MLP should fit it quickly.
  Rng rng(13);
  Mlp mlp("mlp", 1, 16, 1, rng);
  std::vector<Parameter*> params;
  mlp.CollectParams(params);
  Adam adam(params, {.lr = 3e-2f, .beta1 = 0.9f, .beta2 = 0.999f, .eps = 1e-8f, .grad_clip = 0.0f});

  Tensor mask(1, 1);
  mask.Fill(1.0f);
  float final_loss = 1e9f;
  for (int step = 0; step < 400; ++step) {
    const float xv = static_cast<float>(rng.Uniform(-1.0, 1.0));
    Tensor x(1, 1), y(1, 1);
    x.at(0, 0) = xv;
    y.at(0, 0) = 2.0f * xv;
    Graph g;
    const Var loss = g.MseLoss(mlp(g, g.Input(x)), g.Input(y), g.Input(mask));
    final_loss = g.value(loss).at(0, 0);
    g.Backward(loss);
    adam.Step();
  }
  EXPECT_LT(final_loss, 0.02f);
}

// ---------------------------------------------------------- transformer ---

TEST(Transformer, EncodeShapeAndDeterminism) {
  TransformerConfig cfg;
  cfg.input_dim = 20;
  cfg.d_model = 16;
  cfg.num_heads = 4;
  cfg.num_layers = 2;
  cfg.ff_dim = 32;
  Rng rng(17);
  TransformerEncoder enc("enc", cfg, rng);
  const Tensor seq = Arange(3, 20);
  Graph g1, g2;
  const Var o1 = enc.Encode(g1, seq);
  const Var o2 = enc.Encode(g2, seq);
  EXPECT_EQ(g1.value(o1).rows(), 1);
  EXPECT_EQ(g1.value(o1).cols(), 16);
  for (int j = 0; j < 16; ++j) {
    EXPECT_FLOAT_EQ(g1.value(o1).at(0, j), g2.value(o2).at(0, j));
  }
}

TEST(Transformer, SensitiveToSequenceContentAndOrder) {
  TransformerConfig cfg;
  cfg.input_dim = 10;
  cfg.d_model = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  cfg.ff_dim = 16;
  Rng rng(19);
  TransformerEncoder enc("enc", cfg, rng);

  Tensor a = Arange(2, 10);
  Tensor b = a;
  b.at(1, 3) += 1.0f;  // different content
  Tensor c(2, 10);     // swapped rows of a
  for (int j = 0; j < 10; ++j) {
    c.at(0, j) = a.at(1, j);
    c.at(1, j) = a.at(0, j);
  }
  Graph g1, g2, g3;
  const Tensor& oa = g1.value(enc.Encode(g1, a));
  const Tensor& ob = g2.value(enc.Encode(g2, b));
  const Tensor& oc = g3.value(enc.Encode(g3, c));
  double diff_ab = 0.0, diff_ac = 0.0;
  for (int j = 0; j < 8; ++j) {
    diff_ab += std::abs(oa.at(0, j) - ob.at(0, j));
    diff_ac += std::abs(oa.at(0, j) - oc.at(0, j));
  }
  EXPECT_GT(diff_ab, 1e-4);  // content matters
  EXPECT_GT(diff_ac, 1e-4);  // position matters (positional embedding)
}

TEST(Transformer, VariableSequenceLengths) {
  TransformerConfig cfg;
  cfg.input_dim = 12;
  cfg.d_model = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  cfg.ff_dim = 16;
  cfg.max_seq = 6;
  Rng rng(23);
  TransformerEncoder enc("enc", cfg, rng);
  for (int n : {1, 2, 4, 6}) {
    Graph g;
    const Var out = enc.Encode(g, Arange(n, 12));
    EXPECT_EQ(g.value(out).cols(), 8);
  }
  Graph g;
  EXPECT_THROW(enc.Encode(g, Arange(7, 12)), std::invalid_argument);
  EXPECT_THROW(enc.Encode(g, Arange(2, 11)), std::invalid_argument);
}

TEST(Transformer, GradientsFlowToAllParameters) {
  TransformerConfig cfg;
  cfg.input_dim = 10;
  cfg.d_model = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  cfg.ff_dim = 16;
  Rng rng(29);
  TransformerEncoder enc("enc", cfg, rng);
  std::vector<Parameter*> params;
  enc.CollectParams(params);
  for (Parameter* p : params) p->ZeroGrad();

  Graph g;
  const Var ctx = enc.Encode(g, Arange(3, 10));
  Tensor target(1, 8), mask(1, 8);
  mask.Fill(1.0f);
  const Var loss = g.MseLoss(ctx, g.Input(target), g.Input(mask));
  g.Backward(loss);

  int nonzero_params = 0;
  for (Parameter* p : params) {
    float norm = 0.0f;
    for (float v : p->grad.vec()) norm += std::abs(v);
    if (norm > 0.0f) ++nonzero_params;
  }
  // All parameters should receive gradient (pos_emb rows beyond seq-len 3
  // don't, but the parameter overall does).
  EXPECT_EQ(nonzero_params, static_cast<int>(params.size()));
}

// ----------------------------------------------------------- optimizer ---

TEST(Adam, ConvergesOnQuadratic) {
  Rng rng(31);
  Parameter p("p", Tensor::Randn(1, 5, rng, 1.0f));
  Adam adam({&p}, {.lr = 5e-2f, .beta1 = 0.9f, .beta2 = 0.999f, .eps = 1e-8f, .grad_clip = 0.0f});
  Tensor target(1, 5);
  for (int j = 0; j < 5; ++j) target.at(0, j) = static_cast<float>(j);
  Tensor mask(1, 5);
  mask.Fill(1.0f);
  for (int step = 0; step < 500; ++step) {
    Graph g;
    const Var loss = g.MseLoss(g.Param(&p), g.Input(target), g.Input(mask));
    g.Backward(loss);
    adam.Step();
  }
  for (int j = 0; j < 5; ++j) EXPECT_NEAR(p.value.at(0, j), target.at(0, j), 0.05f);
}

TEST(Adam, GradClipBoundsStep)  {
  Parameter p("p", Tensor::Zeros(1, 1));
  Adam adam({&p}, {.lr = 1.0f, .beta1 = 0.0f, .beta2 = 0.0f, .eps = 1e-8f, .grad_clip = 0.5f});
  p.grad.at(0, 0) = 100.0f;  // should be clipped to 0.5
  adam.Step();
  // With beta1=beta2=0, update = lr * g/|g| = 1 (sign-like); the clip
  // limits the *gradient*, not the Adam-normalized step, so just check the
  // value moved in the right direction and is finite.
  EXPECT_LT(p.value.at(0, 0), 0.0f);
  EXPECT_TRUE(std::isfinite(p.value.at(0, 0)));
}

// ----------------------------------------------------------- checkpoint ---

TEST(Checkpoint, SaveLoadRoundTrip) {
  Rng rng(37);
  Parameter a("layer.a", Tensor::Randn(3, 4, rng, 1.0f));
  Parameter b("layer.b", Tensor::Randn(1, 7, rng, 1.0f));
  const std::string path = testing::TempDir() + "/m3_ckpt_test.bin";
  SaveCheckpoint(path, {&a, &b});
  EXPECT_TRUE(IsCheckpointFile(path));

  Parameter a2("layer.a", Tensor::Zeros(3, 4));
  Parameter b2("layer.b", Tensor::Zeros(1, 7));
  LoadCheckpoint(path, {&a2, &b2});
  for (std::size_t i = 0; i < a.value.size(); ++i) {
    EXPECT_FLOAT_EQ(a2.value.vec()[i], a.value.vec()[i]);
  }
  for (std::size_t i = 0; i < b.value.size(); ++i) {
    EXPECT_FLOAT_EQ(b2.value.vec()[i], b.value.vec()[i]);
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingParamAndShapeMismatchThrow) {
  Rng rng(41);
  Parameter a("x", Tensor::Randn(2, 2, rng, 1.0f));
  const std::string path = testing::TempDir() + "/m3_ckpt_test2.bin";
  SaveCheckpoint(path, {&a});

  Parameter wrong_name("y", Tensor::Zeros(2, 2));
  EXPECT_THROW(LoadCheckpoint(path, {&wrong_name}), std::runtime_error);
  Parameter wrong_shape("x", Tensor::Zeros(3, 2));
  EXPECT_THROW(LoadCheckpoint(path, {&wrong_shape}), std::runtime_error);
  EXPECT_THROW(LoadCheckpoint("/nonexistent/file", {&a}), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, NonCheckpointFileRejected) {
  const std::string path = testing::TempDir() + "/m3_not_ckpt.bin";
  FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("hello", f);
  std::fclose(f);
  EXPECT_FALSE(IsCheckpointFile(path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace m3::ml
