#include <gtest/gtest.h>

#include <cstdio>

#include "workload/generator.h"
#include "workload/size_dist.h"
#include "workload/trace_io.h"

namespace m3 {
namespace {

TEST(TraceIo, RoundTripPreservesFlows) {
  const FatTree ft(FatTreeConfig::Small(2.0));
  const auto tm = TrafficMatrix::MatrixB(ft.num_racks(), ft.config().racks_per_pod);
  const auto sizes = MakeWebServer();
  WorkloadSpec spec;
  spec.num_flows = 300;
  spec.seed = 5;
  auto wl = GenerateWorkload(ft, tm, *sizes, spec);
  wl.flows[3].priority = 2;

  const std::string path = testing::TempDir() + "/m3_trace_test.txt";
  SaveTrace(path, ft, wl.flows);
  const auto loaded = LoadTrace(path, ft);
  ASSERT_EQ(loaded.size(), wl.flows.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].id, wl.flows[i].id);
    EXPECT_EQ(loaded[i].src, wl.flows[i].src);
    EXPECT_EQ(loaded[i].dst, wl.flows[i].dst);
    EXPECT_EQ(loaded[i].size, wl.flows[i].size);
    EXPECT_EQ(loaded[i].arrival, wl.flows[i].arrival);
    EXPECT_EQ(loaded[i].priority, wl.flows[i].priority);
    EXPECT_TRUE(ft.topo().ValidateRoute(loaded[i].src, loaded[i].dst, loaded[i].path));
  }
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsCorruptInput) {
  const FatTree ft(FatTreeConfig::Small(1.0));
  const std::string path = testing::TempDir() + "/m3_trace_bad.txt";

  auto write = [&](const char* body) {
    FILE* f = std::fopen(path.c_str(), "w");
    std::fputs(body, f);
    std::fclose(f);
  };
  write("not a trace\n1 0 1 100 0\n");
  EXPECT_THROW(LoadTrace(path, ft), std::runtime_error);
  write("m3-trace v1\n1 0 99999 100 0\n");  // host out of range
  EXPECT_THROW(LoadTrace(path, ft), std::runtime_error);
  write("m3-trace v1\n1 0 1 -5 0\n");  // bad size
  EXPECT_THROW(LoadTrace(path, ft), std::runtime_error);
  write("m3-trace v1\ngarbage line here\n");
  EXPECT_THROW(LoadTrace(path, ft), std::runtime_error);
  EXPECT_THROW(LoadTrace("/nonexistent/trace.txt", ft), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceIo, CommentsAndBlankLinesIgnored) {
  const FatTree ft(FatTreeConfig::Small(1.0));
  const std::string path = testing::TempDir() + "/m3_trace_comments.txt";
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("m3-trace v1\n# comment\n\n7 0 9 1234 5000 1\n", f);
  std::fclose(f);
  const auto flows = LoadTrace(path, ft);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].id, 7);
  EXPECT_EQ(flows[0].size, 1234);
  EXPECT_EQ(flows[0].priority, 1);
  std::remove(path.c_str());
}

TEST(TraceIo, StatusCodesClassifyFailures) {
  const FatTree ft(FatTreeConfig::Small(1.0));
  const std::string path = testing::TempDir() + "/m3_trace_status.txt";
  auto write = [&](const char* body) {
    FILE* f = std::fopen(path.c_str(), "w");
    std::fputs(body, f);
    std::fclose(f);
  };

  EXPECT_EQ(LoadTraceOr("/nonexistent/trace.txt", ft).status().code(),
            StatusCode::kNotFound);

  write("not a trace\n");
  EXPECT_EQ(LoadTraceOr(path, ft).status().code(), StatusCode::kInvalidArgument);

  write("m3-trace v1\n1 0 1 100 0\ngarbage\nmore garbage\n");
  {
    const auto r = LoadTraceOr(path, ft);
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    // Diagnostics must name the file and line of the offending record.
    EXPECT_NE(r.status().message().find(path + ":3"), std::string::npos)
        << r.status().ToString();
  }

  write("m3-trace v1\n1 0 1 100 0 9\n");  // priority out of range
  EXPECT_EQ(LoadTraceOr(path, ft).status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(TraceIo, TruncatedFinalRecordIsDataLoss) {
  const FatTree ft(FatTreeConfig::Small(1.0));
  const std::string path = testing::TempDir() + "/m3_trace_trunc.txt";
  FILE* f = std::fopen(path.c_str(), "w");
  // A valid record followed by a record cut mid-field with no trailing
  // newline: the signature of an interrupted copy.
  std::fputs("m3-trace v1\n1 0 9 1234 5000 1\n2 0 8 77", f);
  std::fclose(f);
  const auto r = LoadTraceOr(path, ft);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss) << r.status().ToString();
  // The throwing wrapper preserves the classification in its message.
  EXPECT_THROW(
      {
        try {
          LoadTrace(path, ft);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("DATA_LOSS"), std::string::npos);
          throw;
        }
      },
      std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceIo, SaveTraceOrRejectsForeignEndpoints) {
  const FatTree ft(FatTreeConfig::Small(1.0));
  Flow f;
  f.id = 0;
  f.src = ft.tor(0);  // a switch, not a host: no host index
  f.dst = ft.host(1);
  f.size = 100;
  const std::string path = testing::TempDir() + "/m3_trace_foreign.txt";
  EXPECT_EQ(SaveTraceOr(path, ft, {f}).code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(TraceIo, HostIndexOfInverseOfHost) {
  const FatTree ft(FatTreeConfig::Small(4.0));
  for (int i = 0; i < ft.num_hosts(); i += 17) {
    EXPECT_EQ(ft.HostIndexOf(ft.host(i)), i);
  }
  EXPECT_EQ(ft.HostIndexOf(ft.tor(0)), -1);
  EXPECT_EQ(ft.HostIndexOf(kInvalidNode), -1);
}

}  // namespace
}  // namespace m3
