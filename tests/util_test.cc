#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/cdf.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/units.h"

namespace m3 {
namespace {

// ---------------------------------------------------------------- units ---

TEST(Units, GbpsConversionRoundTrips) {
  EXPECT_DOUBLE_EQ(GbpsToBpns(10.0), 1.25);
  EXPECT_DOUBLE_EQ(BpnsToGbps(GbpsToBpns(40.0)), 40.0);
}

TEST(Units, TransmissionTimeExactForCleanDivisions) {
  // 1000B at 10 Gbps (1.25 B/ns) = 800 ns exactly.
  EXPECT_EQ(TransmissionTime(1000, GbpsToBpns(10.0)), 800);
  // 1048B at 40 Gbps (5 B/ns) = 209.6 -> rounds up to 210.
  EXPECT_EQ(TransmissionTime(1048, GbpsToBpns(40.0)), 210);
}

TEST(Units, TransmissionTimeRoundsUpNotDown) {
  const Ns t = TransmissionTime(1, GbpsToBpns(100.0));  // 0.08 ns
  EXPECT_EQ(t, 1);
}

// ------------------------------------------------------------------ rng ---

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU32() == b.NextU32());
  EXPECT_LT(same, 4);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextBoundedIsInRangeAndRoughlyUniform) {
  Rng r(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    const auto v = r.NextBounded(10);
    ASSERT_LT(v, 10u);
    counts[static_cast<std::size_t>(v)]++;
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = r.Normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r(13);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.Exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ParetoRespectsScaleAndMean) {
  Rng r(17);
  // alpha=2, xm=1 -> mean = 2.
  double sum = 0.0;
  double min_v = 1e9;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = r.Pareto(1.0, 2.0);
    sum += v;
    min_v = std::min(min_v, v);
  }
  EXPECT_GE(min_v, 1.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, LogNormalMeanMatches) {
  Rng r(19);
  // mu=0, sigma=1 -> mean = exp(0.5).
  double sum = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) sum += r.LogNormal(0.0, 1.0);
  EXPECT_NEAR(sum / n, std::exp(0.5), 0.05);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng r(23);
  std::vector<double> w{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) counts[r.WeightedIndex(w)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng base(31);
  Rng a = base.Fork(1);
  Rng b = base.Fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU32() == b.NextU32());
  EXPECT_LT(same, 4);
  // Forking with the same label twice gives the same stream.
  Rng base2(31);
  Rng a2 = base2.Fork(1);
  Rng a3 = Rng(31).Fork(1);
  EXPECT_EQ(a2.NextU64(), a3.NextU64());
}

// ---------------------------------------------------------------- stats ---

TEST(Stats, PercentileBasics) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 2.0);
}

TEST(Stats, PercentileInterpolatesLinearly) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 99), 9.9);
}

TEST(Stats, PercentileEdgeCases) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 99), 7.0);
}

TEST(Stats, PercentileVector100HasCorrectShape) {
  std::vector<double> v;
  for (int i = 1; i <= 1000; ++i) v.push_back(static_cast<double>(i));
  const auto p = PercentileVector100(v);
  ASSERT_EQ(p.size(), 100u);
  EXPECT_TRUE(std::is_sorted(p.begin(), p.end()));
  EXPECT_DOUBLE_EQ(p.back(), 1000.0);
  EXPECT_NEAR(p[49 - 1], 490.0, 1.0);  // 49th percentile
}

TEST(Stats, RelativeErrorSignConvention) {
  EXPECT_DOUBLE_EQ(RelativeError(11.0, 10.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(9.0, 10.0), -0.1);
  EXPECT_DOUBLE_EQ(RelativeError(5.0, 0.0), 0.0);
}

TEST(Stats, SummarizeOrdering) {
  std::vector<double> v;
  for (int i = 100; i >= 1; --i) v.push_back(static_cast<double>(i));
  const Summary s = Summarize(v);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p99);
  EXPECT_LE(s.p99, s.max);
}

// ------------------------------------------------------------------ cdf ---

TEST(Cdf, QuantileAndCdfAreInverses) {
  PiecewiseCdf cdf({{100, 0.5}, {1000, 1.0}});
  for (double u : {0.1, 0.3, 0.5, 0.7, 0.95}) {
    EXPECT_NEAR(cdf.Cdf(cdf.Quantile(u)), u, 1e-9);
  }
}

TEST(Cdf, MeanMatchesSampling) {
  PiecewiseCdf cdf({{100, 0.3}, {1000, 0.8}, {10000, 1.0}});
  Rng rng(5);
  double sum = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) sum += cdf.Sample(rng);
  EXPECT_NEAR(sum / n / cdf.Mean(), 1.0, 0.02);
}

TEST(Cdf, SamplesWithinSupport) {
  PiecewiseCdf cdf({{200, 0.4}, {5000, 1.0}});
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const double v = cdf.Sample(rng);
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 5000.0);
  }
}

TEST(Cdf, RejectsInvalidInput) {
  EXPECT_THROW(PiecewiseCdf({}), std::invalid_argument);
  EXPECT_THROW(PiecewiseCdf({{-5, 1.0}}), std::invalid_argument);
}

TEST(Cdf, NormalizesUnsortedAndUncappedPoints) {
  PiecewiseCdf cdf({{1000, 0.9}, {100, 0.5}});
  EXPECT_DOUBLE_EQ(cdf.points().back().prob, 1.0);
  EXPECT_LE(cdf.points().front().value, cdf.points().back().value);
}

}  // namespace
}  // namespace m3
