// Overload-control tests (DESIGN.md §13): cost-aware admission, priority
// shedding (lower classes shed first, the highest never starves), eager
// expiry reaping, brownout attribution (degraded answers are never
// silent), wire v4 priority/deadline fields with v3 back-compat, and the
// router's deadline-budget propagation into shard sub-requests.
//
// Suite names deliberately start with "Overload" so check.sh's sanitizer
// tier regexes (Service|SocketServer|... and the chaos set) do not pull
// these in; the `overload` tier drives the live daemon instead.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/exec.h"
#include "serve/registry.h"
#include "serve/router.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve/wire.h"
#include "topo/fat_tree.h"
#include "util/socket.h"
#include "workload/generator.h"
#include "workload/size_dist.h"

namespace m3::serve {
namespace {

// ---------------------------------------------------------------- fixture --

M3ModelConfig TinyModel() {
  M3ModelConfig mcfg;
  mcfg.d_model = 32;
  mcfg.num_layers = 1;
  mcfg.ff_dim = 64;
  mcfg.mlp_hidden = 64;
  return mcfg;
}

std::string TinyCheckpoint() {
  static const std::string path = [] {
    const std::string p = ::testing::TempDir() + "/overload_tiny_model." +
                          std::to_string(static_cast<long>(::getpid())) + ".ckpt";
    M3Model model(TinyModel());
    model.Save(p);
    return p;
  }();
  return path;
}

QueryRequest SmallQuery(int num_paths = 3, std::uint64_t wl_seed = 3) {
  const FatTree ft(FatTreeConfig::Small(2.0));
  const auto tm = TrafficMatrix::MatrixB(ft.num_racks(), ft.config().racks_per_pod);
  const auto sizes = MakeWebServer();
  WorkloadSpec wspec;
  wspec.num_flows = 300;
  wspec.seed = wl_seed;
  const std::vector<Flow> flows = GenerateWorkload(ft, tm, *sizes, wspec).flows;
  QueryRequest req;
  req.oversub = 2.0;
  req.num_paths = num_paths;
  req.flows.reserve(flows.size());
  for (const Flow& f : flows) {
    WireFlow wf;
    wf.id = f.id;
    wf.src_host = ft.HostIndexOf(f.src);
    wf.dst_host = ft.HostIndexOf(f.dst);
    wf.size = f.size;
    wf.arrival = f.arrival;
    wf.priority = f.priority;
    req.flows.push_back(wf);
  }
  return req;
}

ServiceOptions SmallServiceOptions() {
  ServiceOptions so;
  so.model_config = TinyModel();
  so.num_workers = 1;
  so.threads_per_query = 1;
  return so;
}

void ExpectBitwiseEqual(const QueryResponse& a, const QueryResponse& b) {
  EXPECT_EQ(a.bucket_pct, b.bucket_pct);
  EXPECT_EQ(a.total_counts, b.total_counts);
  EXPECT_EQ(a.combined_pct, b.combined_pct);
}

// Blocks the (single) worker thread inside the pre-execute hook until
// Release(), so tests can build queue pressure deterministically.
class WorkerGate {
 public:
  void Install(EstimationService& svc) {
    svc.set_pre_execute_hook([this](const QueryRequest&) {
      std::unique_lock<std::mutex> lock(mu_);
      ++entered_;
      cv_.notify_all();
      cv_.wait(lock, [&] { return open_; });
    });
  }
  void AwaitWorkerBlocked(int n = 1) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return entered_ >= n; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int entered_ = 0;
  bool open_ = false;
};

struct Answer {
  std::promise<QueryResponse> promise;
  std::future<QueryResponse> future = promise.get_future();
  EstimationService::DoneFn Done() {
    return [this](QueryResponse r) { promise.set_value(std::move(r)); };
  }
};

void ExpectInvariant(const ServerStatsWire& s) {
  EXPECT_EQ(s.queries_received,
            s.queries_ok + s.queries_rejected + s.queries_failed + s.queries_shed)
      << "received=" << s.queries_received << " ok=" << s.queries_ok
      << " rejected=" << s.queries_rejected << " failed=" << s.queries_failed
      << " shed=" << s.queries_shed;
}

// ------------------------------------------------------------------- wire --

TEST(OverloadWire, V4RoundTripCarriesPriorityBrownoutAndShedReason) {
  QueryRequest req = SmallQuery();
  req.priority = static_cast<std::uint8_t>(Priority::kInteractive);
  req.brownout = 1;
  req.deadline_seconds = 2.5;
  const StatusOr<QueryRequest> got = DecodeQueryRequest(EncodeQueryRequest(req));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->priority, static_cast<std::uint8_t>(Priority::kInteractive));
  EXPECT_EQ(got->brownout, 1);
  EXPECT_EQ(got->wire_version, kWireVersion);
  EXPECT_EQ(got->deadline_seconds, 2.5);

  QueryResponse resp;
  resp.status = Status::ResourceExhausted("shed");
  resp.shed_reason = static_cast<std::uint8_t>(ShedReason::kPriority);
  resp.degradation.brownout_level = 2;
  resp.degradation.paths_brownout = 7;
  const StatusOr<QueryResponse> rt = DecodeQueryResponse(EncodeQueryResponse(resp));
  ASSERT_TRUE(rt.ok()) << rt.status().ToString();
  EXPECT_EQ(rt->shed_reason, static_cast<std::uint8_t>(ShedReason::kPriority));
  EXPECT_EQ(rt->degradation.brownout_level, 2);
  EXPECT_EQ(rt->degradation.paths_brownout, 7);

  ServerStatsWire st;
  st.queries_shed = 5;
  st.shed_by_reason[static_cast<std::size_t>(ShedReason::kExpired)] = 3;
  st.brownout_queries = 2;
  st.brownout_level = 1;
  st.in_flight_cost = 12.5;
  st.cost_budget = 640.0;
  const StatusOr<ServerStatsWire> gs = DecodeStats(EncodeStats(st));
  ASSERT_TRUE(gs.ok()) << gs.status().ToString();
  EXPECT_EQ(gs->queries_shed, 5u);
  EXPECT_EQ(gs->shed_by_reason[static_cast<std::size_t>(ShedReason::kExpired)], 3u);
  EXPECT_EQ(gs->brownout_queries, 2u);
  EXPECT_EQ(gs->brownout_level, 1u);
  EXPECT_EQ(gs->in_flight_cost, 12.5);
  EXPECT_EQ(gs->cost_budget, 640.0);
}

TEST(OverloadWire, V3PayloadsStillDecodeWithDefaults) {
  // A v3 peer's request decodes on a v4 daemon: priority defaults to
  // kNormal, brownout to 0, and the decoded struct remembers it spoke v3
  // so the response can be encoded back at v3.
  QueryRequest req = SmallQuery();
  req.priority = static_cast<std::uint8_t>(Priority::kCritical);  // not on a v3 wire
  const std::string v3 = EncodeQueryRequest(req, 3);
  const StatusOr<QueryRequest> got = DecodeQueryRequest(v3);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->priority, static_cast<std::uint8_t>(Priority::kNormal));
  EXPECT_EQ(got->brownout, 0);
  EXPECT_EQ(got->wire_version, 3u);

  QueryResponse resp;
  resp.shed_reason = static_cast<std::uint8_t>(ShedReason::kQueueFull);
  const StatusOr<QueryResponse> rt = DecodeQueryResponse(EncodeQueryResponse(resp, 3));
  ASSERT_TRUE(rt.ok()) << rt.status().ToString();
  EXPECT_EQ(rt->shed_reason, static_cast<std::uint8_t>(ShedReason::kNone));

  // A v4 request round-trips its fields through the shard codec at the
  // request's own version; at v3 the priority is dropped on the floor.
  ShardQueryRequest sq;
  sq.query = SmallQuery();
  sq.query.priority = static_cast<std::uint8_t>(Priority::kInteractive);
  sq.query.deadline_seconds = 1.5;
  sq.slots = {0, 2};
  const StatusOr<ShardQueryRequest> s4 =
      DecodeShardQueryRequest(EncodeShardQueryRequest(sq, 4));
  ASSERT_TRUE(s4.ok()) << s4.status().ToString();
  EXPECT_EQ(s4->query.priority, static_cast<std::uint8_t>(Priority::kInteractive));
  EXPECT_EQ(s4->query.deadline_seconds, 1.5);
  const StatusOr<ShardQueryRequest> s3 =
      DecodeShardQueryRequest(EncodeShardQueryRequest(sq, 3));
  ASSERT_TRUE(s3.ok()) << s3.status().ToString();
  EXPECT_EQ(s3->query.priority, static_cast<std::uint8_t>(Priority::kNormal));
  EXPECT_EQ(s3->query.deadline_seconds, 1.5);
}

TEST(OverloadWire, PeekWireVersionRecognizesVersionsAndGarbage) {
  EXPECT_EQ(PeekWireVersion(std::string()), kMinWireVersion);      // old ping/stats
  EXPECT_EQ(PeekWireVersion(std::string("ab")), kMinWireVersion);  // short
  EXPECT_EQ(PeekWireVersion(EncodeQueryRequest(SmallQuery())), kWireVersion);
  EXPECT_EQ(PeekWireVersion(EncodeQueryRequest(SmallQuery(), 3)), 3u);
  std::string garbage(8, '\xff');
  EXPECT_EQ(PeekWireVersion(garbage), kMinWireVersion);
}

TEST(OverloadWire, HostilePriorityAndShedReasonAreRejected) {
  QueryRequest req = SmallQuery();
  req.priority = 17;  // encoder writes it raw; the decoder must refuse
  const StatusOr<QueryRequest> got = DecodeQueryRequest(EncodeQueryRequest(req));
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);

  QueryRequest bad_brownout = SmallQuery();
  bad_brownout.brownout = 9;
  EXPECT_EQ(DecodeQueryRequest(EncodeQueryRequest(bad_brownout)).status().code(),
            StatusCode::kInvalidArgument);

  QueryResponse resp;
  resp.shed_reason = kNumShedReasons;  // one past the last valid reason
  EXPECT_EQ(DecodeQueryResponse(EncodeQueryResponse(resp)).status().code(),
            StatusCode::kInvalidArgument);
}

// -------------------------------------------------------------- admission --

TEST(OverloadAdmission, LowerClassShedFirstAndCriticalNeverStarves) {
  ServiceOptions so = SmallServiceOptions();
  so.queue_capacity = 2;
  so.brownout_enabled = false;  // keep the critical answer full-quality
  EstimationService svc(so);
  ASSERT_TRUE(svc.ReloadModel(TinyCheckpoint()).ok());
  WorkerGate gate;
  gate.Install(svc);
  ASSERT_TRUE(svc.Start().ok());

  QueryRequest bg = SmallQuery();
  bg.priority = static_cast<std::uint8_t>(Priority::kBackground);
  bg.no_cache = true;

  // q0 occupies the worker; q1/q2 fill the queue.
  Answer a0, a1, a2;
  ASSERT_TRUE(svc.Submit(bg, a0.Done()).ok());
  gate.AwaitWorkerBlocked();
  ASSERT_TRUE(svc.Submit(bg, a1.Done()).ok());
  ASSERT_TRUE(svc.Submit(bg, a2.Done()).ok());

  // Same class, full queue: the original FIFO rejection, with its reason.
  ShedReason why = ShedReason::kNone;
  Answer a3;
  const Status st = svc.Submit(bg, a3.Done(), &why);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
  EXPECT_NE(st.ToString().find("queue full"), std::string::npos) << st.ToString();
  EXPECT_EQ(why, ShedReason::kQueueFull);

  // A critical arrival displaces the newest background entry (q2) instead
  // of being turned away: lower classes shed first, critical never starves.
  QueryRequest crit = SmallQuery(3, /*wl_seed=*/5);
  crit.priority = static_cast<std::uint8_t>(Priority::kCritical);
  crit.no_cache = true;
  Answer a4;
  ASSERT_TRUE(svc.Submit(crit, a4.Done(), &why).ok());
  EXPECT_EQ(why, ShedReason::kNone);

  const QueryResponse displaced = a2.future.get();  // fires without the worker
  EXPECT_EQ(displaced.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(displaced.shed_reason, static_cast<std::uint8_t>(ShedReason::kPriority));

  gate.Release();
  svc.Stop();  // drains: q0, q1, and the critical q4 all answer

  const QueryResponse crit_resp = a4.future.get();
  EXPECT_TRUE(crit_resp.status.ok()) << crit_resp.status.ToString();
  EXPECT_EQ(crit_resp.degradation.brownout_level, 0);
  EXPECT_TRUE(a0.future.get().status.ok());
  EXPECT_TRUE(a1.future.get().status.ok());

  const ServerStatsWire s = svc.Stats();
  EXPECT_EQ(s.queries_rejected, 1u);
  EXPECT_EQ(s.queries_shed, 1u);
  EXPECT_EQ(s.shed_by_reason[static_cast<std::size_t>(ShedReason::kQueueFull)], 1u);
  EXPECT_EQ(s.shed_by_reason[static_cast<std::size_t>(ShedReason::kPriority)], 1u);
  ExpectInvariant(s);
}

TEST(OverloadAdmission, ExpiredQueuedEntriesAreReapedEagerly) {
  ServiceOptions so = SmallServiceOptions();
  so.queue_capacity = 4;
  so.brownout_enabled = false;  // keep drained answers full-quality kOk
  EstimationService svc(so);
  ASSERT_TRUE(svc.ReloadModel(TinyCheckpoint()).ok());
  WorkerGate gate;
  gate.Install(svc);
  ASSERT_TRUE(svc.Start().ok());

  QueryRequest blocker = SmallQuery();
  blocker.no_cache = true;
  Answer a0;
  ASSERT_TRUE(svc.Submit(blocker, a0.Done()).ok());
  gate.AwaitWorkerBlocked();

  QueryRequest doomed = SmallQuery();
  doomed.no_cache = true;
  doomed.deadline_seconds = 0.05;
  Answer a1;
  ASSERT_TRUE(svc.Submit(doomed, a1.Done()).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(120));

  // The next Submit reaps the expired entry — before any worker frees up —
  // so it stops occupying a queue slot that admissible work could use.
  QueryRequest fresh = SmallQuery(3, /*wl_seed=*/7);
  fresh.no_cache = true;
  Answer a2;
  ASSERT_TRUE(svc.Submit(fresh, a2.Done()).ok());

  const QueryResponse reaped = a1.future.get();  // typed, without execution
  EXPECT_EQ(reaped.status.code(), StatusCode::kDeadlineExceeded)
      << reaped.status.ToString();
  EXPECT_EQ(reaped.shed_reason, static_cast<std::uint8_t>(ShedReason::kExpired));
  EXPECT_EQ(svc.Stats().queue_depth, 1u);  // only `fresh` still queued

  gate.Release();
  svc.Stop();
  EXPECT_TRUE(a0.future.get().status.ok());
  EXPECT_TRUE(a2.future.get().status.ok());
  const ServerStatsWire s = svc.Stats();
  EXPECT_EQ(s.queries_shed, 1u);
  EXPECT_EQ(s.shed_by_reason[static_cast<std::size_t>(ShedReason::kExpired)], 1u);
  ExpectInvariant(s);
}

TEST(OverloadAdmission, CostBudgetShedsBurstsButNeverAnIdleService) {
  ServiceOptions so = SmallServiceOptions();
  so.queue_capacity = 64;
  so.cost_budget = 5.0;  // one small query costs ~4 (1 + flows/1e4 + paths)
  so.brownout_enabled = false;
  EstimationService svc(so);
  ASSERT_TRUE(svc.ReloadModel(TinyCheckpoint()).ok());
  WorkerGate gate;
  gate.Install(svc);
  ASSERT_TRUE(svc.Start().ok());

  QueryRequest q = SmallQuery();
  q.no_cache = true;

  // Nothing in flight: admitted even though its cost is most of the budget.
  Answer a0;
  ASSERT_TRUE(svc.Submit(q, a0.Done()).ok());
  gate.AwaitWorkerBlocked();

  // With ~4 committed, another ~4 would blow the budget of 5: shed typed.
  ShedReason why = ShedReason::kNone;
  Answer a1;
  const Status st = svc.Submit(q, a1.Done(), &why);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
  EXPECT_EQ(why, ShedReason::kCostBudget);

  // kCritical bypasses the cost gate: overload control protects the top
  // class, it does not meter it.
  QueryRequest crit = SmallQuery(3, /*wl_seed=*/9);
  crit.no_cache = true;
  crit.priority = static_cast<std::uint8_t>(Priority::kCritical);
  Answer a2;
  ASSERT_TRUE(svc.Submit(crit, a2.Done(), &why).ok());
  EXPECT_EQ(why, ShedReason::kNone);

  gate.Release();
  svc.Stop();
  EXPECT_TRUE(a0.future.get().status.ok());
  EXPECT_TRUE(a2.future.get().status.ok());
  const ServerStatsWire s = svc.Stats();
  EXPECT_EQ(s.queries_rejected, 1u);
  EXPECT_EQ(s.shed_by_reason[static_cast<std::size_t>(ShedReason::kCostBudget)], 1u);
  EXPECT_NEAR(s.in_flight_cost, 0.0, 1e-9);  // fully released after the drain
  ExpectInvariant(s);
}

TEST(OverloadAdmission, SojournGateShedsBeforeTheQueueFills) {
  ServiceOptions so = SmallServiceOptions();
  so.queue_capacity = 64;  // far from full: the gate is about delay, not depth
  so.shed_sojourn_seconds = 0.05;
  so.brownout_enabled = false;
  EstimationService svc(so);
  ASSERT_TRUE(svc.ReloadModel(TinyCheckpoint()).ok());
  WorkerGate gate;
  gate.Install(svc);
  ASSERT_TRUE(svc.Start().ok());

  QueryRequest q = SmallQuery();
  q.no_cache = true;
  Answer a0, a1;
  ASSERT_TRUE(svc.Submit(q, a0.Done()).ok());
  gate.AwaitWorkerBlocked();
  ASSERT_TRUE(svc.Submit(q, a1.Done()).ok());  // queued; starts the sojourn clock
  std::this_thread::sleep_for(std::chrono::milliseconds(120));

  ShedReason why = ShedReason::kNone;
  Answer a2;
  const Status st = svc.Submit(q, a2.Done(), &why);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
  EXPECT_EQ(why, ShedReason::kSojourn);

  gate.Release();
  svc.Stop();
  EXPECT_TRUE(a0.future.get().status.ok());
  EXPECT_TRUE(a1.future.get().status.ok());
  const ServerStatsWire s = svc.Stats();
  EXPECT_EQ(s.shed_by_reason[static_cast<std::size_t>(ShedReason::kSojourn)], 1u);
  ExpectInvariant(s);
}

// --------------------------------------------------------------- brownout --

TEST(OverloadBrownout, AttributedNeverSilentAndLevelZeroBitwiseIdentical) {
  ServiceOptions so = SmallServiceOptions();
  EstimationService svc(so);
  ASSERT_TRUE(svc.ReloadModel(TinyCheckpoint()).ok());

  QueryRequest req = SmallQuery(/*num_paths=*/40);
  req.no_cache = true;

  const QueryResponse full_a = svc.ExecuteInline(req);
  const QueryResponse full_b = svc.ExecuteInline(req);
  ASSERT_TRUE(full_a.status.ok()) << full_a.status.ToString();
  ExpectBitwiseEqual(full_a, full_b);  // the pre-PR determinism contract
  EXPECT_EQ(full_a.degradation.brownout_level, 0);

  // Level 1: reduced path sample. Still answers, but *loudly* degraded.
  QueryRequest b1 = req;
  b1.brownout = 1;
  const QueryResponse r1 = svc.ExecuteInline(b1);
  EXPECT_EQ(r1.status.code(), StatusCode::kDegraded) << r1.status.ToString();
  EXPECT_EQ(r1.degradation.brownout_level, 1);
  EXPECT_EQ(r1.degradation.paths_brownout, 20);  // 40 -> max(16, 20)
  EXPECT_TRUE(r1.degradation.Degraded());
  EXPECT_NE(r1.degradation.ToString().find("brownout"), std::string::npos);

  // Level 2: flowSim substitute; every path is reduced quality.
  QueryRequest b2 = req;
  b2.brownout = 2;
  const QueryResponse r2 = svc.ExecuteInline(b2);
  EXPECT_EQ(r2.status.code(), StatusCode::kDegraded) << r2.status.ToString();
  EXPECT_EQ(r2.degradation.brownout_level, 2);
  EXPECT_EQ(r2.degradation.paths_brownout, 40);

  // Bitwise: the brownout code path must not perturb full-quality answers.
  const QueryResponse full_c = svc.ExecuteInline(req);
  ExpectBitwiseEqual(full_a, full_c);
}

TEST(OverloadBrownout, BrownedOutAnswersNeverPoisonCaches) {
  ServiceOptions so = SmallServiceOptions();
  EstimationService svc(so);
  ASSERT_TRUE(svc.ReloadModel(TinyCheckpoint()).ok());

  // A cacheable (no_cache=false) browned-out query: kDegraded, so neither
  // the query cache nor the path cache may keep any of it.
  QueryRequest b2 = SmallQuery(/*num_paths=*/6);
  b2.brownout = 2;
  const QueryResponse browned = svc.ExecuteInline(b2);
  EXPECT_EQ(browned.status.code(), StatusCode::kDegraded);
  ServerStatsWire s = svc.Stats();
  EXPECT_EQ(s.query_cache[2], 0u) << "query cache inserts after brownout";
  EXPECT_EQ(s.path_cache[2], 0u) << "path cache inserts after flowSim substitute";

  // The same query at full quality recomputes with the model — it cannot
  // be served the browned-out bytes.
  QueryRequest full = SmallQuery(/*num_paths=*/6);
  const QueryResponse clean = svc.ExecuteInline(full);
  ASSERT_TRUE(clean.status.ok()) << clean.status.ToString();
  EXPECT_FALSE(clean.query_cache_hit);

  // And a repeat IS a cache hit, bitwise identical (the normal contract).
  const QueryResponse hit = svc.ExecuteInline(full);
  EXPECT_TRUE(hit.query_cache_hit);
  ExpectBitwiseEqual(clean, hit);
}

TEST(OverloadBrownout, ControllerEngagesUnderSojournAndRecovers) {
  ServiceOptions so = SmallServiceOptions();
  so.queue_capacity = 8;
  so.brownout1_sojourn_seconds = 0.05;
  so.brownout2_sojourn_seconds = 60.0;  // keep this test at level 1
  so.brownout_hold_seconds = 0.1;
  EstimationService svc(so);
  ASSERT_TRUE(svc.ReloadModel(TinyCheckpoint()).ok());
  WorkerGate gate;
  gate.Install(svc);
  ASSERT_TRUE(svc.Start().ok());

  QueryRequest blocker = SmallQuery();
  blocker.no_cache = true;
  Answer a0;
  ASSERT_TRUE(svc.Submit(blocker, a0.Done()).ok());
  gate.AwaitWorkerBlocked();

  QueryRequest waiting = SmallQuery(/*num_paths=*/40, /*wl_seed=*/11);
  waiting.no_cache = true;
  Answer a1;
  ASSERT_TRUE(svc.Submit(waiting, a1.Done()).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(150));  // > brownout1
  gate.Release();

  // The query that waited past the sojourn threshold is served browned out
  // — and says so.
  const QueryResponse r1 = a1.future.get();
  EXPECT_EQ(r1.status.code(), StatusCode::kDegraded) << r1.status.ToString();
  EXPECT_EQ(r1.degradation.brownout_level, 1);
  EXPECT_GT(svc.Stats().brownout_queries, 0u);

  // After the pressure stops and the hold expires, quality recovers.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  QueryRequest calm = SmallQuery(/*num_paths=*/40, /*wl_seed=*/13);
  calm.no_cache = true;
  const QueryResponse r2 = svc.Query(calm);
  EXPECT_TRUE(r2.status.ok()) << r2.status.ToString();
  EXPECT_EQ(r2.degradation.brownout_level, 0);
  EXPECT_EQ(svc.Stats().brownout_level, 0u);
  svc.Stop();
}

TEST(OverloadBrownout, CriticalQueriesAreNeverBrownedOut) {
  ServiceOptions so = SmallServiceOptions();
  so.queue_capacity = 8;
  so.brownout1_sojourn_seconds = 0.05;
  so.brownout_hold_seconds = 5.0;
  EstimationService svc(so);
  ASSERT_TRUE(svc.ReloadModel(TinyCheckpoint()).ok());
  WorkerGate gate;
  gate.Install(svc);
  ASSERT_TRUE(svc.Start().ok());

  QueryRequest blocker = SmallQuery();
  blocker.no_cache = true;
  Answer a0;
  ASSERT_TRUE(svc.Submit(blocker, a0.Done()).ok());
  gate.AwaitWorkerBlocked();

  QueryRequest crit = SmallQuery(3, /*wl_seed=*/17);
  crit.no_cache = true;
  crit.priority = static_cast<std::uint8_t>(Priority::kCritical);
  Answer a1;
  ASSERT_TRUE(svc.Submit(crit, a1.Done()).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(150));  // brownout engages
  gate.Release();

  const QueryResponse r = a1.future.get();
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.degradation.brownout_level, 0);
  svc.Stop();
}

// ------------------------------------------------- router deadline budget --

// A scripted shard: answers pings ready and records the deadline budget of
// every shard sub-request it receives, answering each slot with a plainly
// valid estimate.
class RecordingShard {
 public:
  explicit RecordingShard(const std::string& path) {
    ServerHooks hooks;
    hooks.ping = [] {
      PingResponse p;
      p.ready = true;
      p.model_version = 1;
      return p;
    };
    hooks.stats = [] { return ServerStatsWire{}; };
    hooks.shard_query = [this](const ShardQueryRequest& req) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        deadlines_.push_back(req.query.deadline_seconds);
        priorities_.push_back(req.query.priority);
      }
      ShardQueryResponse resp;
      resp.model_version = 1;
      resp.estimates.reserve(req.slots.size());
      for (std::uint32_t slot : req.slots) {
        PathEstimate pe;
        for (auto& bucket : pe.pct) bucket.fill(1.25);
        pe.counts.fill(2.0);
        resp.estimates.push_back(SlotEstimateWire{slot, pe});
      }
      return resp;
    };
    server_ = std::make_unique<SocketServer>(std::move(hooks));
    start_status_ = server_->Start(path);
  }

  const Status& start_status() const { return start_status_; }

  std::vector<double> deadlines() {
    std::lock_guard<std::mutex> lock(mu_);
    return deadlines_;
  }
  std::vector<std::uint8_t> priorities() {
    std::lock_guard<std::mutex> lock(mu_);
    return priorities_;
  }

 private:
  Status start_status_;
  std::unique_ptr<SocketServer> server_;
  std::mutex mu_;
  std::vector<double> deadlines_;
  std::vector<std::uint8_t> priorities_;
};

RouterOptions OneShardRouter(const std::string& path) {
  RouterOptions ro;
  ro.shards = {path};
  ro.replicas = 1;
  ro.connect_timeout_seconds = 1.0;
  ro.shard_timeout_seconds = 20.0;
  ro.retry_backoff_ms = 5.0;
  ro.health_interval_seconds = 0.05;
  ro.fallback_threads = 2;
  return ro;
}

TEST(OverloadRouterBudget, RemainingDeadlinePropagatesIntoSubRequests) {
  const std::string path = ::testing::TempDir() + "/overload_shard." +
                           std::to_string(static_cast<long>(::getpid())) + ".sock";
  RecordingShard shard(path);
  ASSERT_TRUE(shard.start_status().ok()) << shard.start_status().ToString();
  Router router(OneShardRouter(path));
  ASSERT_TRUE(router.Start().ok());
  // Wait for the health probe to mark the shard usable.
  for (int i = 0; i < 100 && !router.Ping().ready; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(router.Ping().ready);

  QueryRequest req = SmallQuery(/*num_paths=*/4);
  req.deadline_seconds = 5.0;
  req.priority = static_cast<std::uint8_t>(Priority::kInteractive);
  const QueryResponse resp = router.Query(req);
  EXPECT_TRUE(IsAnsweredCode(resp.status.code())) << resp.status.ToString();

  const std::vector<double> seen = shard.deadlines();
  ASSERT_FALSE(seen.empty());
  for (double d : seen) {
    // The sub-request budget is what is LEFT: positive, and strictly less
    // than the client's deadline (scatter time already elapsed).
    EXPECT_GT(d, 0.0);
    EXPECT_LT(d, 5.0);
  }
  for (std::uint8_t p : shard.priorities()) {
    EXPECT_EQ(p, static_cast<std::uint8_t>(Priority::kInteractive));
  }
  router.Stop();
}

TEST(OverloadRouterBudget, ShedsTypedWhenBudgetCannotCoverDispatch) {
  const std::string path = ::testing::TempDir() + "/overload_shard2." +
                           std::to_string(static_cast<long>(::getpid())) + ".sock";
  RecordingShard shard(path);
  ASSERT_TRUE(shard.start_status().ok()) << shard.start_status().ToString();
  Router router(OneShardRouter(path));
  ASSERT_TRUE(router.Start().ok());
  for (int i = 0; i < 100 && !router.Ping().ready; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  QueryRequest req = SmallQuery(/*num_paths=*/4);
  req.deadline_seconds = 1e-7;  // gone before placement finishes
  const QueryResponse resp = router.Query(req);
  EXPECT_EQ(resp.status.code(), StatusCode::kDeadlineExceeded)
      << resp.status.ToString();
  EXPECT_EQ(resp.shed_reason, static_cast<std::uint8_t>(ShedReason::kRouterBudget));
  EXPECT_TRUE(shard.deadlines().empty()) << "shed queries must not reach shards";

  const ServerStatsWire s = router.Stats();
  EXPECT_EQ(s.queries_shed, 1u);
  EXPECT_EQ(s.shed_by_reason[static_cast<std::size_t>(ShedReason::kRouterBudget)], 1u);
  router.Stop();
}

}  // namespace
}  // namespace m3::serve
