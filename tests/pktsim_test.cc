#include <gtest/gtest.h>

#include <algorithm>

#include "pktsim/simulator.h"
#include "topo/parking_lot.h"
#include "util/rng.h"
#include "util/stats.h"

namespace m3 {
namespace {

struct DumbbellNet {
  // h0, h1 -> s -> h2 : two senders share one 10G bottleneck.
  Topology topo;
  NodeId h0, h1, h2, s;
  LinkId h0s, h1s, sh2;

  DumbbellNet() {
    h0 = topo.AddNode(NodeKind::kHost);
    h1 = topo.AddNode(NodeKind::kHost);
    h2 = topo.AddNode(NodeKind::kHost);
    s = topo.AddNode(NodeKind::kSwitch);
    h0s = topo.AddDuplexLink(h0, s, GbpsToBpns(10), 1000).first;
    h1s = topo.AddDuplexLink(h1, s, GbpsToBpns(10), 1000).first;
    sh2 = topo.AddDuplexLink(s, h2, GbpsToBpns(10), 1000).first;
  }

  Flow MakeFlow(FlowId id, NodeId src, LinkId first, Bytes size, Ns arrival) const {
    Flow f;
    f.id = id;
    f.src = src;
    f.dst = h2;
    f.size = size;
    f.arrival = arrival;
    f.path = {first, sh2};
    return f;
  }
};

NetConfig DctcpConfig() {
  NetConfig cfg;
  cfg.cc = CcType::kDctcp;
  cfg.init_window = 15 * kKB;
  cfg.buffer = 300 * kKB;
  cfg.dctcp_k = 10 * kKB;
  return cfg;
}

TEST(PktSim, SingleUnloadedFlowMatchesIdealClosely) {
  DumbbellNet net;
  for (Bytes size : {500, 5000, 100000, 2000000}) {
    const auto res =
        RunPacketSim(net.topo, {net.MakeFlow(0, net.h0, net.h0s, size, 0)}, DctcpConfig());
    ASSERT_EQ(res.size(), 1u);
    // Window growth can add RTT gaps for medium flows; allow 2.2x headroom
    // but require slowdown >= 1 (nothing can beat ideal).
    EXPECT_GE(res[0].slowdown, 1.0) << "size " << size;
    EXPECT_LT(res[0].slowdown, 2.2) << "size " << size;
  }
}

TEST(PktSim, LargeFlowReachesLineRate) {
  DumbbellNet net;
  const Bytes size = 20 * kMB;
  const auto res =
      RunPacketSim(net.topo, {net.MakeFlow(0, net.h0, net.h0s, size, 0)}, DctcpConfig());
  EXPECT_NEAR(res[0].slowdown, 1.0, 0.05);
}

TEST(PktSim, TwoLongFlowsSplitBottleneckFairly) {
  DumbbellNet net;
  const Bytes size = 10 * kMB;
  const auto res = RunPacketSim(net.topo,
                                {net.MakeFlow(0, net.h0, net.h0s, size, 0),
                                 net.MakeFlow(1, net.h1, net.h1s, size, 0)},
                                DctcpConfig());
  // Each should get ~half the bottleneck: slowdown ~2 with some CC slack.
  EXPECT_NEAR(res[0].slowdown, 2.0, 0.4);
  EXPECT_NEAR(res[1].slowdown, 2.0, 0.4);
  // Fairness: completion times within 15%.
  const double ratio = static_cast<double>(res[0].fct) / static_cast<double>(res[1].fct);
  EXPECT_NEAR(ratio, 1.0, 0.15);
}

TEST(PktSim, DctcpKeepsQueuesNearK) {
  DumbbellNet net;
  NetConfig cfg = DctcpConfig();
  cfg.dctcp_k = 10 * kKB;
  PacketSimulator sim(net.topo,
                      {net.MakeFlow(0, net.h0, net.h0s, 20 * kMB, 0),
                       net.MakeFlow(1, net.h1, net.h1s, 20 * kMB, 0)},
                      cfg);
  sim.Run();
  EXPECT_GT(sim.stats().ecn_marks, 0u);
  // DCTCP should keep the persistent queue within a small multiple of K
  // (slow-start overshoot can spike above K briefly).
  EXPECT_LT(sim.stats().max_qbytes, 8 * cfg.dctcp_k);
  EXPECT_EQ(sim.stats().drops, 0u);
}

TEST(PktSim, TinyBufferCausesDropsAndRetransmissions) {
  DumbbellNet net;
  NetConfig cfg = DctcpConfig();
  cfg.buffer = 5 * kKB;       // pathological
  cfg.dctcp_k = 100 * kKB;    // effectively disable ECN
  cfg.init_window = 30 * kKB;
  PacketSimulator sim(net.topo,
                      {net.MakeFlow(0, net.h0, net.h0s, 1 * kMB, 0),
                       net.MakeFlow(1, net.h1, net.h1s, 1 * kMB, 0)},
                      cfg);
  const auto res = sim.Run();
  EXPECT_GT(sim.stats().drops, 0u);
  EXPECT_GT(sim.stats().retransmissions, 0u);
  // Despite losses, both flows complete.
  EXPECT_EQ(res.size(), 2u);
  for (const auto& r : res) EXPECT_GT(r.fct, 0);
}

TEST(PktSim, PfcPreventsAllDrops) {
  DumbbellNet net;
  NetConfig cfg = DctcpConfig();
  cfg.buffer = 30 * kKB;
  cfg.dctcp_k = 1000 * kKB;  // no ECN; rely on PFC backpressure
  cfg.pfc = true;
  cfg.init_window = 30 * kKB;
  PacketSimulator sim(net.topo,
                      {net.MakeFlow(0, net.h0, net.h0s, 2 * kMB, 0),
                       net.MakeFlow(1, net.h1, net.h1s, 2 * kMB, 0)},
                      cfg);
  const auto res = sim.Run();
  EXPECT_EQ(sim.stats().drops, 0u);
  for (const auto& r : res) EXPECT_GT(r.fct, 0);
}

class PktSimAllCcTest : public ::testing::TestWithParam<CcType> {};

TEST_P(PktSimAllCcTest, CongestedWorkloadCompletesWithReasonableSlowdowns) {
  DumbbellNet net;
  NetConfig cfg = DctcpConfig();
  cfg.cc = GetParam();
  Rng rng(42);
  std::vector<Flow> flows;
  Ns t = 0;
  for (int i = 0; i < 60; ++i) {
    t += static_cast<Ns>(rng.NextBounded(40 * kUs));
    const Bytes size = 500 + static_cast<Bytes>(rng.NextBounded(200000));
    const bool from_h0 = rng.NextDouble() < 0.5;
    flows.push_back(net.MakeFlow(i, from_h0 ? net.h0 : net.h1,
                                 from_h0 ? net.h0s : net.h1s, size, t));
  }
  PacketSimulator sim(net.topo, flows, cfg);
  const auto res = sim.Run();
  ASSERT_EQ(res.size(), flows.size());
  for (const auto& r : res) {
    EXPECT_GE(r.slowdown, 0.99) << CcName(cfg.cc);
    EXPECT_LT(r.slowdown, 500.0) << CcName(cfg.cc);
  }
}

TEST_P(PktSimAllCcTest, LongFlowUtilizesBottleneckWell) {
  DumbbellNet net;
  NetConfig cfg = DctcpConfig();
  cfg.cc = GetParam();
  const auto res =
      RunPacketSim(net.topo, {net.MakeFlow(0, net.h0, net.h0s, 20 * kMB, 0)}, cfg);
  // A single long flow should achieve at least 60% of line rate under any
  // of the four protocols.
  EXPECT_LT(res[0].slowdown, 1.7) << CcName(cfg.cc);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, PktSimAllCcTest,
                         ::testing::Values(CcType::kDctcp, CcType::kTimely,
                                           CcType::kDcqcn, CcType::kHpcc),
                         [](const auto& info) { return CcName(info.param); });

TEST(PktSim, DeterministicAcrossRuns) {
  DumbbellNet net;
  NetConfig cfg = DctcpConfig();
  cfg.cc = CcType::kDcqcn;  // exercises the marking RNG too
  Rng rng(1);
  std::vector<Flow> flows;
  for (int i = 0; i < 40; ++i) {
    flows.push_back(net.MakeFlow(i, i % 2 ? net.h0 : net.h1, i % 2 ? net.h0s : net.h1s,
                                 1000 + static_cast<Bytes>(rng.NextBounded(50000)),
                                 static_cast<Ns>(rng.NextBounded(200 * kUs))));
  }
  const auto r1 = RunPacketSim(net.topo, flows, cfg);
  const auto r2 = RunPacketSim(net.topo, flows, cfg);
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].fct, r2[i].fct);
  }
}

TEST(PktSim, SmallerInitWindowSlowsShortFlowsOnLongPaths) {
  // A short flow larger than the init window needs extra RTTs.
  ParkingLot pl(4, GbpsToBpns(10), 5000);
  const NodeId a = pl.AttachHost(0, GbpsToBpns(10), 1);
  const NodeId b = pl.AttachHost(4, GbpsToBpns(10), 2);
  Flow f{0, a, b, 30 * kKB, 0, pl.RouteBetween(a, 0, b, 4)};

  NetConfig small = DctcpConfig();
  small.init_window = 5 * kKB;
  NetConfig large = DctcpConfig();
  large.init_window = 30 * kKB;
  const auto r_small = RunPacketSim(pl.topo(), {f}, small);
  const auto r_large = RunPacketSim(pl.topo(), {f}, large);
  EXPECT_GT(r_small[0].fct, r_large[0].fct);
}

TEST(PktSim, EcnMarkingRespectsThreshold) {
  DumbbellNet net;
  NetConfig cfg = DctcpConfig();
  // Queues (host or switch) are bounded by the windows in flight, which
  // cannot exceed the flow sizes; a threshold above that sees no marks.
  cfg.dctcp_k = 2 * kMB;
  cfg.buffer = 10 * kMB;
  PacketSimulator sim(net.topo,
                      {net.MakeFlow(0, net.h0, net.h0s, 500 * kKB, 0),
                       net.MakeFlow(1, net.h1, net.h1s, 500 * kKB, 0)},
                      cfg);
  sim.Run();
  EXPECT_EQ(sim.stats().ecn_marks, 0u);
}

TEST(PktSim, ShortFlowsSufferBehindQueueBuildup) {
  // Tail-latency mechanism check: a 1-packet flow behind a heavy incast
  // experiences slowdown >> 1.
  DumbbellNet net;
  NetConfig cfg = DctcpConfig();
  std::vector<Flow> flows;
  flows.push_back(net.MakeFlow(0, net.h0, net.h0s, 3 * kMB, 0));
  flows.push_back(net.MakeFlow(1, net.h1, net.h1s, 3 * kMB, 0));
  // Short flow arrives mid-transfer.
  flows.push_back(net.MakeFlow(2, net.h0, net.h0s, 800, 500 * kUs));
  const auto res = RunPacketSim(net.topo, flows, cfg);
  EXPECT_GT(res[2].slowdown, 1.3);
}

TEST(PktSim, ResultsCarryIdealFctConsistentWithTopology) {
  DumbbellNet net;
  const Flow f = net.MakeFlow(0, net.h0, net.h0s, 12345, 0);
  const auto res = RunPacketSim(net.topo, {f}, DctcpConfig());
  EXPECT_EQ(res[0].ideal_fct, IdealFct(net.topo, f.path, f.size));
  EXPECT_EQ(res[0].size, f.size);
}

TEST(PktSim, InvalidFlowsRejected) {
  DumbbellNet net;
  Flow f = net.MakeFlow(0, net.h0, net.h0s, 1000, 0);
  f.path = {net.h1s, net.sh2};  // starts at the wrong host
  EXPECT_THROW(PacketSimulator(net.topo, {f}, DctcpConfig()), std::invalid_argument);
  Flow g = net.MakeFlow(0, net.h0, net.h0s, 0, 0);  // zero size
  EXPECT_THROW(PacketSimulator(net.topo, {g}, DctcpConfig()), std::invalid_argument);
}

TEST(PktSim, PerFlowRetransmitAccounting) {
  // Pathological buffer forces losses; per-flow counters must sum to the
  // global counter and stay zero on a clean run.
  DumbbellNet net;
  NetConfig clean = DctcpConfig();
  {
    PacketSimulator sim(net.topo, {net.MakeFlow(0, net.h0, net.h0s, 1 * kMB, 0)}, clean);
    const auto res = sim.Run();
    EXPECT_EQ(res[0].retransmits, 0);
    EXPECT_EQ(res[0].timeouts, 0);
  }
  NetConfig lossy = DctcpConfig();
  lossy.buffer = 5 * kKB;
  lossy.dctcp_k = 100 * kKB;
  lossy.init_window = 30 * kKB;
  PacketSimulator sim(net.topo,
                      {net.MakeFlow(0, net.h0, net.h0s, 1 * kMB, 0),
                       net.MakeFlow(1, net.h1, net.h1s, 1 * kMB, 0)},
                      lossy);
  const auto res = sim.Run();
  std::int64_t total = 0;
  for (const auto& r : res) total += r.retransmits;
  EXPECT_GT(total, 0);
  EXPECT_EQ(static_cast<std::uint64_t>(total), sim.stats().retransmissions);
}

TEST(PktSim, ManyShortFlowsStatisticallySane) {
  DumbbellNet net;
  NetConfig cfg = DctcpConfig();
  Rng rng(77);
  std::vector<Flow> flows;
  Ns t = 0;
  for (int i = 0; i < 400; ++i) {
    t += static_cast<Ns>(rng.NextBounded(20 * kUs));
    const bool from_h0 = rng.NextDouble() < 0.5;
    flows.push_back(net.MakeFlow(i, from_h0 ? net.h0 : net.h1,
                                 from_h0 ? net.h0s : net.h1s,
                                 100 + static_cast<Bytes>(rng.NextBounded(20000)), t));
  }
  const auto res = RunPacketSim(net.topo, flows, cfg);
  std::vector<double> sldn;
  for (const auto& r : res) sldn.push_back(r.slowdown);
  const Summary s = Summarize(sldn);
  EXPECT_GE(s.p50, 1.0);
  EXPECT_GT(s.p99, s.p50);
  EXPECT_LT(s.p99, 100.0);
}

}  // namespace
}  // namespace m3
