// Tests for strict-priority classes (the paper's §3.6 future-work item)
// across both simulators.
#include <gtest/gtest.h>

#include "flowsim/flowsim.h"
#include "pktsim/simulator.h"
#include "topo/parking_lot.h"
#include "util/stats.h"

namespace m3 {
namespace {

// Two flows share one 10G link; one is high priority, one low.
struct PrioNet {
  ParkingLot lot{1, GbpsToBpns(10.0), 1000, /*hosts_at_ends=*/true};

  Flow MakeFlow(FlowId id, Bytes size, Ns arrival, std::uint8_t prio) {
    Flow f;
    f.id = id;
    f.src = lot.switch_at(0);
    f.dst = lot.switch_at(1);
    f.size = size;
    f.arrival = arrival;
    f.path = lot.RouteBetween(lot.switch_at(0), 0, lot.switch_at(1), 1);
    f.priority = prio;
    return f;
  }
};

TEST(PriorityFlowSim, HighClassPreemptsLowClass) {
  PrioNet net;
  const Bytes size = 2 * kMB;
  std::vector<Flow> flows{net.MakeFlow(0, size, 0, /*prio=*/0),
                          net.MakeFlow(1, size, 0, /*prio=*/1)};
  const auto res = RunFlowSim(net.lot.topo(), flows);
  // High priority runs at full rate: slowdown ~1. Low priority waits for
  // it, then runs alone: slowdown ~2.
  EXPECT_NEAR(res[0].slowdown, 1.0, 0.02);
  EXPECT_NEAR(res[1].slowdown, 2.0, 0.1);
}

TEST(PriorityFlowSim, EqualClassesShareFairly) {
  PrioNet net;
  const Bytes size = 2 * kMB;
  std::vector<Flow> flows{net.MakeFlow(0, size, 0, 1), net.MakeFlow(1, size, 0, 1)};
  const auto res = RunFlowSim(net.lot.topo(), flows);
  EXPECT_NEAR(res[0].slowdown, 2.0, 0.05);
  EXPECT_NEAR(res[1].slowdown, 2.0, 0.05);
}

TEST(PriorityFlowSim, MiddleClassSeesOnlyLeftovers) {
  // Three classes on one link: class 0 takes all, then 1, then 2.
  PrioNet net;
  const Bytes size = 1 * kMB;
  std::vector<Flow> flows{net.MakeFlow(0, size, 0, 0), net.MakeFlow(1, size, 0, 1),
                          net.MakeFlow(2, size, 0, 2)};
  const auto res = RunFlowSim(net.lot.topo(), flows);
  EXPECT_LT(res[0].fct, res[1].fct);
  EXPECT_LT(res[1].fct, res[2].fct);
  EXPECT_NEAR(res[0].slowdown, 1.0, 0.02);
  EXPECT_NEAR(res[2].slowdown, 3.0, 0.15);
}

TEST(PriorityPktSim, HighClassLatencyShieldedFromLowClassQueue) {
  // A long low-priority flow fills the bottleneck queue; a short
  // high-priority flow should cut through with a small slowdown, while the
  // same short flow at low priority suffers.
  NetConfig cfg;
  cfg.dctcp_k = 1000 * kKB;  // disable ECN so the queue actually builds
  cfg.buffer = 500 * kKB;

  auto run_with_priority = [&](std::uint8_t prio) {
    PrioNet net;
    std::vector<Flow> flows{net.MakeFlow(0, 5 * kMB, 0, 1),
                            net.MakeFlow(1, 10 * kKB, 1 * kMs, prio)};
    const auto res = RunPacketSim(net.lot.topo(), flows, cfg);
    return res[1].slowdown;
  };

  const double high = run_with_priority(0);
  const double low = run_with_priority(1);
  EXPECT_LT(high, low * 0.5);
  EXPECT_LT(high, 4.0);
  EXPECT_GT(low, 5.0);
}

TEST(PriorityPktSim, LowClassStillCompletes) {
  PrioNet net;
  NetConfig cfg;
  std::vector<Flow> flows;
  // Heavy high-priority load plus a few low-priority flows: no starvation
  // into infinity because the high-priority flows finish.
  for (int i = 0; i < 10; ++i) flows.push_back(net.MakeFlow(i, 200 * kKB, i * 10 * kUs, 0));
  for (int i = 10; i < 13; ++i) flows.push_back(net.MakeFlow(i, 50 * kKB, 0, 2));
  const auto res = RunPacketSim(net.lot.topo(), flows, cfg);
  for (const auto& r : res) EXPECT_GT(r.fct, 0);
}

TEST(PriorityPktSim, DefaultPriorityZeroKeepsLegacyBehavior) {
  // Flows with default priority behave identically to the pre-priority
  // engine: deterministic fair sharing between equal flows.
  PrioNet net;
  NetConfig cfg;
  std::vector<Flow> flows{net.MakeFlow(0, 1 * kMB, 0, 0), net.MakeFlow(1, 1 * kMB, 0, 0)};
  const auto res = RunPacketSim(net.lot.topo(), flows, cfg);
  EXPECT_NEAR(res[0].slowdown, 2.0, 0.5);
  EXPECT_NEAR(res[1].slowdown, 2.0, 0.5);
}

}  // namespace
}  // namespace m3
