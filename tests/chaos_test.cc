// Chaos harness for the supervised worker pool (DESIGN.md §10).
//
// Drives the three worker fault sites (serve/worker_crash, worker_hang,
// worker_garbage_reply) through SupervisorOptions::worker_faults — the spec
// is armed inside each forked worker, so the parent's FaultRegistry stays
// clean — plus *external* SIGKILLs of worker pids, and asserts the
// supervisor's contract: every query is answered, the daemon process never
// dies, workers respawn with deterministic backoff, hangs are cut at
// deadline + grace, a model that keeps killing workers trips the breaker
// and rolls back, and Stop() leaves no zombies behind.
//
// Suite names (WorkerPool / Supervisor / ChaosSoak / SocketTimeout) are the
// chaos tier's ctest filter in tools/check.sh; they are deliberately
// disjoint from the TSan tier's filter because fork() and ThreadSanitizer
// do not mix.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "serve/exec.h"
#include "serve/registry.h"
#include "serve/service.h"
#include "serve/supervisor.h"
#include "serve/wire.h"
#include "serve/worker.h"
#include "topo/fat_tree.h"
#include "util/fault.h"
#include "util/socket.h"
#include "workload/generator.h"
#include "workload/size_dist.h"

namespace m3::serve {
namespace {

class FaultGuard {
 public:
  FaultGuard() { FaultRegistry::Instance().Reset(); }
  ~FaultGuard() { FaultRegistry::Instance().Reset(); }
};

// ---------------------------------------------------------------- fixture --

M3ModelConfig SmallModel() {
  M3ModelConfig mcfg;
  mcfg.d_model = 32;
  mcfg.num_layers = 1;
  mcfg.ff_dim = 64;
  mcfg.mlp_hidden = 64;
  return mcfg;
}

std::string SmallCheckpoint() {
  static const std::string path = [] {
    const std::string p = ::testing::TempDir() + "/chaos_small_model.ckpt";
    M3Model model(SmallModel());
    model.Save(p);
    return p;
  }();
  return path;
}

// A second valid checkpoint with different weights (rollback target).
std::string SmallCheckpointB() {
  static const std::string path = [] {
    const std::string p = ::testing::TempDir() + "/chaos_small_model_b.ckpt";
    M3ModelConfig mcfg = SmallModel();
    mcfg.init_seed = 777;
    M3Model model(mcfg);
    model.Save(p);
    return p;
  }();
  return path;
}

// Worker-mode service options tuned for test latency: fast backoff, small
// pool, short lease waits.
ServiceOptions WorkerServiceOptions(int workers = 2) {
  ServiceOptions so;
  so.model_config = SmallModel();
  so.num_workers = workers;
  so.threads_per_query = 1;
  so.worker_processes = workers;
  so.supervisor.backoff_initial_ms = 5;
  so.supervisor.backoff_max_ms = 100;
  so.supervisor.lease_timeout_seconds = 30.0;
  return so;
}

QueryRequest SmallQuery(std::uint64_t wl_seed = 3) {
  const FatTree ft(FatTreeConfig::Small(2.0));
  const auto tm = TrafficMatrix::MatrixB(ft.num_racks(), ft.config().racks_per_pod);
  const auto sizes = MakeWebServer();
  WorkloadSpec wspec;
  wspec.num_flows = 300;
  wspec.seed = wl_seed;
  const std::vector<Flow> flows = GenerateWorkload(ft, tm, *sizes, wspec).flows;
  QueryRequest req;
  req.oversub = 2.0;
  req.num_paths = 3;
  req.flows.reserve(flows.size());
  for (const Flow& f : flows) {
    WireFlow wf;
    wf.id = f.id;
    wf.src_host = ft.HostIndexOf(f.src);
    wf.dst_host = ft.HostIndexOf(f.dst);
    wf.size = f.size;
    wf.arrival = f.arrival;
    wf.priority = f.priority;
    req.flows.push_back(wf);
  }
  return req;
}

void ExpectBitwiseEqual(const QueryResponse& a, const QueryResponse& b) {
  EXPECT_EQ(a.bucket_pct, b.bucket_pct);
  EXPECT_EQ(a.total_counts, b.total_counts);
  EXPECT_EQ(a.combined_pct, b.combined_pct);
}

/// True once `pred` holds, polling every 10ms up to `timeout`.
template <typename Pred>
bool WaitFor(Pred pred, std::chrono::milliseconds timeout) {
  const auto stop = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    if (pred()) return true;
    if (std::chrono::steady_clock::now() >= stop) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

// --------------------------------------------------------- socket timeouts --

TEST(SocketTimeout, RecvTimeoutSurfacesDeadlineExceeded) {
  UnixFd a, b;
  ASSERT_TRUE(MakeSocketPair(&a, &b).ok());
  ASSERT_TRUE(SetRecvTimeout(a, 0.05).ok());
  const auto t0 = std::chrono::steady_clock::now();
  StatusOr<Frame> got = RecvFrame(a);  // nobody ever writes: must time out
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded)
      << got.status().ToString();
  EXPECT_LT(waited, 5.0);  // returned promptly, not a blocked read
}

TEST(SocketTimeout, RecvBeforeTimeoutStillWorks) {
  UnixFd a, b;
  ASSERT_TRUE(MakeSocketPair(&a, &b).ok());
  ASSERT_TRUE(SetRecvTimeout(a, 5.0).ok());
  ASSERT_TRUE(SendFrame(b, 42, "payload").ok());
  StatusOr<Frame> got = RecvFrame(a);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->type, 42u);
  EXPECT_EQ(got->payload, "payload");
}

TEST(SocketTimeout, ClearingTimeoutRestoresBlockingReads) {
  UnixFd a, b;
  ASSERT_TRUE(MakeSocketPair(&a, &b).ok());
  ASSERT_TRUE(SetRecvTimeout(a, 0.05).ok());
  ASSERT_TRUE(SetRecvTimeout(a, 0.0).ok());  // 0 clears the timeout
  std::thread writer([&b] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    (void)SendFrame(b, 7, "late");
  });
  StatusOr<Frame> got = RecvFrame(a);  // would have timed out at 50ms
  writer.join();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->payload, "late");
}

TEST(SocketTimeout, ConnectTimeoutToMissingSocketFailsFast) {
  const auto t0 = std::chrono::steady_clock::now();
  StatusOr<UnixFd> fd =
      ConnectUnixTimeout(::testing::TempDir() + "/chaos_no_such.sock", 0.5);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_FALSE(fd.ok());
  EXPECT_LT(waited, 5.0);
}

// ------------------------------------------------------------- worker pool --

TEST(WorkerPool, AnswersBitwiseIdenticalToInProcess) {
  FaultGuard guard;
  // The headline invariant: default (fault-free) worker-mode serving is
  // indistinguishable from in-process serving — both run serve/exec.h on
  // the same snapshot, so the answers must match to the last bit.
  ServiceOptions in_proc;
  in_proc.model_config = SmallModel();
  EstimationService inline_svc(in_proc);
  ASSERT_TRUE(inline_svc.ReloadModel(SmallCheckpoint()).ok());

  EstimationService worker_svc(WorkerServiceOptions());
  ASSERT_TRUE(worker_svc.ReloadModel(SmallCheckpoint()).ok());
  ASSERT_TRUE(worker_svc.Start().ok());

  QueryRequest req = SmallQuery();
  req.no_cache = true;
  const QueryResponse a = inline_svc.ExecuteInline(req);
  const QueryResponse b = worker_svc.Query(req);
  ASSERT_TRUE(a.status.ok()) << a.status.ToString();
  ASSERT_TRUE(b.status.ok()) << b.status.ToString();
  ExpectBitwiseEqual(a, b);
  EXPECT_EQ(a.model_crc, b.model_crc);
  worker_svc.Stop();
}

TEST(WorkerPool, CrashedQueryIsRetriedOnAFreshWorker) {
  FaultGuard guard;
  ServiceOptions so = WorkerServiceOptions();
  // Fault counters are per-child: each worker aborts on its *second*
  // request. Query 1 lands on worker 0 (hit 1: survives). Query 2 lands on
  // worker 0 again (hit 2: abort); the retry leases worker 1 at hit 1 and
  // answers. The crash is invisible to the caller.
  so.supervisor.worker_faults = std::string(kWorkerCrashSite) + "=throw@2x1";
  EstimationService svc(so);
  ASSERT_TRUE(svc.ReloadModel(SmallCheckpoint()).ok());
  ASSERT_TRUE(svc.Start().ok());

  QueryRequest req = SmallQuery();
  req.no_cache = true;
  const QueryResponse first = svc.Query(req);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  const QueryResponse second = svc.Query(req);
  ASSERT_TRUE(second.status.ok()) << second.status.ToString();
  ExpectBitwiseEqual(first, second);

  const ServerStatsWire s = svc.Stats();
  EXPECT_TRUE(s.worker_mode);
  EXPECT_GE(s.worker_crashes, 1u);
  EXPECT_GE(s.crash_retried_queries, 1u);
  svc.Stop();
}

TEST(WorkerPool, HangIsKilledAtDeadlinePlusGraceAndAnswersDeadlineExceeded) {
  FaultGuard guard;
  ServiceOptions so = WorkerServiceOptions();
  so.supervisor.grace_seconds = 0.3;
  // Each worker wedges (pause() forever) on its second request.
  so.supervisor.worker_faults = std::string(kWorkerHangSite) + "=throw@2x1";
  EstimationService svc(so);
  ASSERT_TRUE(svc.ReloadModel(SmallCheckpoint()).ok());
  ASSERT_TRUE(svc.Start().ok());

  QueryRequest req = SmallQuery();
  req.no_cache = true;
  ASSERT_TRUE(svc.Query(req).status.ok());

  req.deadline_seconds = 0.5;
  const auto t0 = std::chrono::steady_clock::now();
  const QueryResponse hung = svc.Query(req);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_EQ(hung.status.code(), StatusCode::kDeadlineExceeded)
      << hung.status.ToString();
  // Cut at deadline + grace (0.8s), not the 120s default watchdog — allow
  // generous slack for a loaded machine but far below the default.
  EXPECT_LT(waited, 30.0);
  EXPECT_GE(svc.Stats().watchdog_kills, 1u);

  // The pool recovered: the next query answers on a respawned worker.
  req.deadline_seconds = 0.0;
  const QueryResponse after = svc.Query(req);
  EXPECT_TRUE(after.status.ok()) << after.status.ToString();
  svc.Stop();
}

TEST(WorkerPool, GarbageReplyNeverSurfacesToTheCaller) {
  FaultGuard guard;
  ServiceOptions so = WorkerServiceOptions();
  // Each worker answers its second request with unframed junk bytes; the
  // supervisor must kill it and retry on a fresh worker.
  so.supervisor.worker_faults = std::string(kWorkerGarbageSite) + "=throw@2x1";
  EstimationService svc(so);
  ASSERT_TRUE(svc.ReloadModel(SmallCheckpoint()).ok());
  ASSERT_TRUE(svc.Start().ok());

  QueryRequest req = SmallQuery();
  req.no_cache = true;
  const QueryResponse clean = svc.Query(req);
  ASSERT_TRUE(clean.status.ok()) << clean.status.ToString();
  const QueryResponse retried = svc.Query(req);
  ASSERT_TRUE(retried.status.ok()) << retried.status.ToString();
  ExpectBitwiseEqual(clean, retried);
  EXPECT_GE(svc.Stats().garbage_replies, 1u);
  svc.Stop();
}

TEST(WorkerPool, PingReportsReadinessAndWorkerMode) {
  FaultGuard guard;
  EstimationService svc(WorkerServiceOptions());
  PingResponse before = svc.Ping();
  EXPECT_FALSE(before.ready);  // no model yet
  EXPECT_TRUE(before.worker_mode);

  ASSERT_TRUE(svc.ReloadModel(SmallCheckpoint()).ok());
  ASSERT_TRUE(svc.Start().ok());
  ASSERT_TRUE(WaitFor([&] { return svc.Ping().ready; },
                      std::chrono::milliseconds(5000)));
  const PingResponse after = svc.Ping();
  EXPECT_TRUE(after.worker_mode);
  EXPECT_GE(after.workers_alive, 1u);
  EXPECT_GT(after.model_version, 0u);
  svc.Stop();
}

// -------------------------------------------------------------- supervisor --

TEST(Supervisor, BackoffScheduleIsDeterministicAndCapped) {
  EXPECT_EQ(WorkerSupervisor::BackoffDelayMs(1, 25, 2000), 25);
  EXPECT_EQ(WorkerSupervisor::BackoffDelayMs(2, 25, 2000), 50);
  EXPECT_EQ(WorkerSupervisor::BackoffDelayMs(3, 25, 2000), 100);
  EXPECT_EQ(WorkerSupervisor::BackoffDelayMs(4, 25, 2000), 200);
  EXPECT_EQ(WorkerSupervisor::BackoffDelayMs(7, 25, 2000), 1600);
  EXPECT_EQ(WorkerSupervisor::BackoffDelayMs(8, 25, 2000), 2000);   // capped
  EXPECT_EQ(WorkerSupervisor::BackoffDelayMs(60, 25, 2000), 2000);  // no overflow
  EXPECT_EQ(WorkerSupervisor::BackoffDelayMs(0, 25, 2000), 25);     // clamped low
  EXPECT_EQ(WorkerSupervisor::BackoffDelayMs(3, 4000, 2000), 2000); // init > max
}

TEST(Supervisor, JitteredBackoffIsBoundedDeterministicAndPerSlot) {
  // The jitter factor lives in [0.5, 1.5) of the base delay and is a pure
  // function of (seed, slot, failure): a respawn storm across slots must not
  // synchronize, but a fixed seed must replay the exact same schedule.
  const int base = 1000;
  for (std::uint64_t slot = 0; slot < 8; ++slot) {
    for (std::uint64_t failure = 1; failure <= 6; ++failure) {
      const int d = WorkerSupervisor::JitteredBackoffMs(base, 42, slot, failure);
      EXPECT_GE(d, base / 2);
      EXPECT_LT(d, base + base / 2);
      EXPECT_EQ(d, WorkerSupervisor::JitteredBackoffMs(base, 42, slot, failure));
    }
  }
  // Distinct slots land on distinct points of the factor range (same seed,
  // same failure count) — that is the whole anti-thundering-herd point.
  std::set<int> per_slot;
  for (std::uint64_t slot = 0; slot < 8; ++slot)
    per_slot.insert(WorkerSupervisor::JitteredBackoffMs(base, 42, slot, 3));
  EXPECT_GT(per_slot.size(), 6u);
  // Different seeds produce different schedules for the same slot.
  EXPECT_NE(WorkerSupervisor::JitteredBackoffMs(base, 1, 0, 3),
            WorkerSupervisor::JitteredBackoffMs(base, 2, 0, 3));
  // Tiny base delays never jitter down to zero.
  EXPECT_GE(WorkerSupervisor::JitteredBackoffMs(1, 42, 0, 1), 1);
}

TEST(Supervisor, WorkerKilledWhileIdleIsReapedAndRespawned) {
  FaultGuard guard;
  // "Dies between accept and reply" from the supervisor's point of view:
  // the worker is idle (no query in flight) when it dies; the reaper must
  // notice via waitpid, charge the failure, and respawn.
  EstimationService svc(WorkerServiceOptions());
  ASSERT_TRUE(svc.ReloadModel(SmallCheckpoint()).ok());
  ASSERT_TRUE(svc.Start().ok());
  WorkerSupervisor* sup = svc.supervisor();
  ASSERT_NE(sup, nullptr);
  ASSERT_TRUE(WaitFor([&] { return sup->worker_pids().size() == 2; },
                      std::chrono::milliseconds(5000)));

  const std::uint64_t spawns_before = sup->stats().spawns;
  const std::vector<pid_t> pids = sup->worker_pids();
  ASSERT_EQ(::kill(pids[0], SIGKILL), 0);

  ASSERT_TRUE(WaitFor([&] { return sup->stats().spawns > spawns_before; },
                      std::chrono::milliseconds(5000)));
  ASSERT_TRUE(WaitFor([&] { return sup->stats().alive == 2; },
                      std::chrono::milliseconds(5000)));
  EXPECT_GE(sup->stats().restarts, 1u);

  // The respawned pool still answers.
  QueryRequest req = SmallQuery();
  req.no_cache = true;
  EXPECT_TRUE(svc.Query(req).status.ok());
  svc.Stop();
}

TEST(Supervisor, StopDrainsAndLeavesNoZombies) {
  FaultGuard guard;
  EstimationService svc(WorkerServiceOptions(3));
  ASSERT_TRUE(svc.ReloadModel(SmallCheckpoint()).ok());
  ASSERT_TRUE(svc.Start().ok());
  WorkerSupervisor* sup = svc.supervisor();
  ASSERT_TRUE(WaitFor([&] { return sup->worker_pids().size() == 3; },
                      std::chrono::milliseconds(5000)));
  QueryRequest req = SmallQuery();
  req.no_cache = true;
  ASSERT_TRUE(svc.Query(req).status.ok());

  const std::vector<pid_t> pids = sup->worker_pids();
  ASSERT_EQ(pids.size(), 3u);
  svc.Stop();

  // Every worker is gone *and reaped*: kill(pid, 0) on a zombie still
  // succeeds, so ESRCH proves the supervisor did the waitpid.
  for (const pid_t pid : pids) {
    errno = 0;
    EXPECT_EQ(::kill(pid, 0), -1) << "worker " << pid << " survived Stop()";
    EXPECT_EQ(errno, ESRCH) << "worker " << pid << " left as a zombie";
  }
  EXPECT_TRUE(sup->worker_pids().empty());
}

TEST(Supervisor, SpawnIsDeferredUntilAModelExists) {
  FaultGuard guard;
  EstimationService svc(WorkerServiceOptions());
  ASSERT_TRUE(svc.Start().ok());  // no model yet: nothing to pin
  EXPECT_EQ(svc.supervisor()->stats().alive, 0u);
  EXPECT_FALSE(svc.Ping().ready);

  ASSERT_TRUE(svc.ReloadModel(SmallCheckpoint()).ok());
  ASSERT_TRUE(WaitFor([&] { return svc.Ping().ready; },
                      std::chrono::milliseconds(5000)));
  QueryRequest req = SmallQuery();
  req.no_cache = true;
  EXPECT_TRUE(svc.Query(req).status.ok());
  svc.Stop();
}

TEST(Supervisor, BreakerTripsOnCrashingModelAndRollsBackToLastGood) {
  FaultGuard guard;
  ServiceOptions so = WorkerServiceOptions();
  so.supervisor.breaker_threshold = 3;
  so.supervisor.breaker_window_seconds = 60.0;
  EstimationService svc(so);
  // Serve A successfully, then reload to B — A becomes last_good.
  ASSERT_TRUE(svc.ReloadModel(SmallCheckpoint()).ok());
  ASSERT_TRUE(svc.Start().ok());
  QueryRequest req = SmallQuery();
  req.no_cache = true;
  ASSERT_TRUE(svc.Query(req).status.ok());
  const std::uint32_t crc_a = svc.Stats().model_crc;
  ASSERT_TRUE(svc.ReloadModel(SmallCheckpointB()).ok());
  const std::uint32_t crc_b = svc.Stats().model_crc;
  ASSERT_NE(crc_a, crc_b);

  // Externally kill whichever worker each query leases, until the failures
  // charged to B's digest trip the breaker. Each crashed query is retried
  // once then answers kUnavailable — the daemon itself never dies.
  WorkerSupervisor* sup = svc.supervisor();
  std::atomic<bool> stop_killer{false};
  std::thread killer([&] {
    while (!stop_killer.load(std::memory_order_relaxed)) {
      for (const pid_t pid : sup->worker_pids()) ::kill(pid, SIGKILL);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  const bool tripped = WaitFor(
      [&] {
        QueryRequest probe = SmallQuery();
        probe.no_cache = true;
        (void)svc.Query(probe);
        return sup->stats().breaker_trips >= 1;
      },
      std::chrono::milliseconds(30000));
  stop_killer.store(true, std::memory_order_relaxed);
  killer.join();
  ASSERT_TRUE(tripped);

  // B's digest is quarantined; the registry rolled back to A (same version
  // semantics as a Republish: no version bump, A's weights serve again).
  ASSERT_TRUE(WaitFor([&] { return svc.Stats().model_crc == crc_a; },
                      std::chrono::milliseconds(10000)));
  // Reloading the quarantined checkpoint is refused and A keeps serving.
  const Status refused = svc.ReloadModel(SmallCheckpointB());
  EXPECT_EQ(refused.code(), StatusCode::kUnavailable) << refused.ToString();
  EXPECT_EQ(svc.Stats().model_crc, crc_a);

  // With the kill storm over, the rolled-back pool serves again.
  ASSERT_TRUE(WaitFor(
      [&] {
        QueryRequest probe = SmallQuery();
        probe.no_cache = true;
        return svc.Query(probe).status.ok();
      },
      std::chrono::milliseconds(30000)));
  svc.Stop();
}

// -------------------------------------------------------------- chaos soak --

TEST(ChaosSoak, ExternalKillStormUnderConcurrentLoadAnswersEverything) {
  FaultGuard guard;
  ServiceOptions so = WorkerServiceOptions(3);
  so.query_cache_entries = 0;  // force every query through a worker
  EstimationService svc(so);
  ASSERT_TRUE(svc.ReloadModel(SmallCheckpoint()).ok());
  ASSERT_TRUE(svc.Start().ok());
  WorkerSupervisor* sup = svc.supervisor();
  ASSERT_TRUE(WaitFor([&] { return sup->stats().alive == 3; },
                      std::chrono::milliseconds(5000)));

  std::atomic<bool> stop_killer{false};
  std::thread killer([&] {
    // Kill a worker every 20ms for the duration of the load — many
    // pool-widths of deaths.
    while (!stop_killer.load(std::memory_order_relaxed)) {
      const std::vector<pid_t> pids = sup->worker_pids();
      if (!pids.empty()) ::kill(pids.front(), SIGKILL);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 25;
  std::atomic<int> answered{0};
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int q = 0; q < kQueriesPerClient; ++q) {
        QueryRequest req = SmallQuery(static_cast<std::uint64_t>(c * 100 + q));
        req.no_cache = true;
        // The supervisor retries one crash itself; mimic m3_client's retry
        // loop on top for kills that land on both attempts.
        QueryResponse resp;
        for (int attempt = 0; attempt < 4; ++attempt) {
          resp = svc.Query(req);
          if (resp.status.code() != StatusCode::kUnavailable) break;
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
        answered.fetch_add(1, std::memory_order_relaxed);
        if (IsAnsweredCode(resp.status.code())) {
          ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          ADD_FAILURE() << "query " << c << "/" << q
                        << " failed: " << resp.status.ToString();
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  stop_killer.store(true, std::memory_order_relaxed);
  killer.join();

  EXPECT_EQ(answered.load(), kClients * kQueriesPerClient);
  EXPECT_EQ(ok.load(), kClients * kQueriesPerClient);
  const ServerStatsWire s = svc.Stats();
  EXPECT_GE(s.worker_restarts, 1u) << "the kill storm never landed";

  // The storm is over: the pool heals and serves cleanly again.
  ASSERT_TRUE(WaitFor(
      [&] {
        QueryRequest probe = SmallQuery();
        probe.no_cache = true;
        return svc.Query(probe).status.ok();
      },
      std::chrono::milliseconds(30000)));

  const std::vector<pid_t> pids = sup->worker_pids();
  svc.Stop();
  for (const pid_t pid : pids) {
    errno = 0;
    EXPECT_EQ(::kill(pid, 0), -1);
    EXPECT_EQ(errno, ESRCH) << "zombie worker " << pid << " after Stop()";
  }
}

TEST(ChaosSoak, ReloadStormWhileServingKeepsAnswering) {
  FaultGuard guard;
  ServiceOptions so = WorkerServiceOptions();
  so.query_cache_entries = 0;
  EstimationService svc(so);
  ASSERT_TRUE(svc.ReloadModel(SmallCheckpoint()).ok());
  ASSERT_TRUE(svc.Start().ok());

  // Roll the pool between checkpoints while queries are in flight: every
  // query must answer, served by whichever snapshot its worker pinned.
  std::atomic<bool> stop_reloader{false};
  std::thread reloader([&] {
    bool use_b = true;
    while (!stop_reloader.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(
          svc.ReloadModel(use_b ? SmallCheckpointB() : SmallCheckpoint()).ok());
      use_b = !use_b;
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
  });
  for (int q = 0; q < 8; ++q) {
    QueryRequest req = SmallQuery(static_cast<std::uint64_t>(q));
    req.no_cache = true;
    const QueryResponse resp = svc.Query(req);
    EXPECT_TRUE(IsAnsweredCode(resp.status.code()))
        << "query " << q << ": " << resp.status.ToString();
  }
  stop_reloader.store(true, std::memory_order_relaxed);
  reloader.join();
  svc.Stop();
}

}  // namespace
}  // namespace m3::serve
