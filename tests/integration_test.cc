// Cross-module integration and property tests: consistency between the two
// simulators, end-to-end estimator properties, and failure injection.
#include <gtest/gtest.h>

#include "core/estimator.h"
#include "pathdecomp/sampling.h"
#include "core/scenario.h"
#include "flowsim/flowsim.h"
#include "pktsim/simulator.h"
#include "topo/fat_tree.h"
#include "util/stats.h"
#include "workload/generator.h"
#include "workload/size_dist.h"

namespace m3 {
namespace {

// -------------------------------------------- simulator cross-validation ---

TEST(CrossSim, LongFlowFctsAgreeBetweenFluidAndPacket) {
  // For long flows under light load, max-min sharing is a good model of
  // DCTCP: the two simulators should produce similar FCTs (this is the
  // premise of Fig. 6(d)).
  SyntheticSpec spec;
  spec.num_links = 2;
  spec.family = ParametricFamily::kExponential;
  spec.theta = 300000.0;  // long flows
  spec.sigma = 1.0;
  spec.max_load = 0.4;
  spec.num_fg = 60;
  spec.bg_ratio = 0.5;
  spec.seed = 5;
  const PathScenario sc = BuildSyntheticScenario(spec);

  const auto fluid = RunPathFlowSim(sc);
  NetConfig cfg;
  const auto pkt = RunPathPktSim(sc, cfg);

  std::vector<double> ratios;
  for (std::size_t i = 0; i < sc.flows.size(); ++i) {
    if (sc.flows[i].size < 100000) continue;
    ratios.push_back(static_cast<double>(pkt[i].fct) / static_cast<double>(fluid[i].fct));
  }
  ASSERT_GT(ratios.size(), 10u);
  const double median = Percentile(ratios, 50);
  EXPECT_GT(median, 0.8);
  EXPECT_LT(median, 1.6);
}

TEST(CrossSim, FlowSimNeverAboveAndPktSimTracksIdealWhenUnloaded) {
  // At very low load both simulators should report slowdown ~1 for
  // everything.
  SyntheticSpec spec;
  spec.num_links = 4;
  spec.theta = 20000.0;
  spec.max_load = 0.05;
  spec.num_fg = 80;
  spec.bg_ratio = 0.5;
  spec.sigma = 1.0;
  spec.seed = 9;
  const PathScenario sc = BuildSyntheticScenario(spec);
  const auto fluid = RunPathFlowSim(sc);
  NetConfig cfg;
  const auto pkt = RunPathPktSim(sc, cfg);
  EXPECT_LT(Percentile([&] {
              std::vector<double> v;
              for (const auto& r : fluid) v.push_back(r.slowdown);
              return v;
            }(), 50), 1.5);
  EXPECT_LT(Percentile([&] {
              std::vector<double> v;
              for (const auto& r : pkt) v.push_back(r.slowdown);
              return v;
            }(), 50), 2.0);
}

TEST(CrossSim, PacketSlowdownsRiseWithLoad) {
  double prev_p99 = 0.0;
  for (double load : {0.2, 0.5, 0.8}) {
    SyntheticSpec spec;
    spec.num_links = 2;
    spec.theta = 15000.0;
    spec.max_load = load;
    spec.num_fg = 400;
    spec.bg_ratio = 1.0;
    spec.sigma = 1.5;
    spec.seed = 31;  // same workload skeleton, different load scaling
    const PathScenario sc = BuildSyntheticScenario(spec);
    NetConfig cfg;
    const auto pkt = RunPathPktSim(sc, cfg);
    std::vector<double> sldn;
    for (const auto& r : pkt) sldn.push_back(r.slowdown);
    const double p99 = Percentile(std::move(sldn), 99);
    EXPECT_GT(p99, prev_p99 * 0.8) << "load " << load;  // broadly increasing
    prev_p99 = p99;
  }
  EXPECT_GT(prev_p99, 1.5);  // 80% load is visibly congested
}

// ------------------------------------------------------------- estimator ---

TEST(EstimatorIntegration, DeterministicForFixedSeeds) {
  const FatTree ft(FatTreeConfig::Small(2.0));
  const auto tm = TrafficMatrix::MatrixB(ft.num_racks(), ft.config().racks_per_pod);
  const auto sizes = MakeWebServer();
  WorkloadSpec wspec;
  wspec.num_flows = 500;
  wspec.seed = 3;
  const auto wl = GenerateWorkload(ft, tm, *sizes, wspec);

  M3ModelConfig mcfg;
  mcfg.d_model = 32;
  mcfg.num_layers = 1;
  mcfg.ff_dim = 64;
  mcfg.mlp_hidden = 64;
  M3Model model(mcfg);
  NetConfig cfg;
  M3Options opts;
  opts.num_paths = 4;
  const auto a = RunM3(ft.topo(), wl.flows, cfg, model, opts);
  const auto b = RunM3(ft.topo(), wl.flows, cfg, model, opts);
  ASSERT_EQ(a.combined_pct.size(), b.combined_pct.size());
  for (std::size_t i = 0; i < a.combined_pct.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.combined_pct[i], b.combined_pct[i]);
  }
}

TEST(EstimatorIntegration, Ns3PathTracksGroundTruthOnModerateLoad) {
  // Decomposition-error check with sampling error excluded: compare the
  // path-level simulation of sampled paths against the *same foreground
  // flows* inside the full simulation (the paper's Fig. 2(c) methodology).
  const FatTree ft(FatTreeConfig::Small(1.0));
  const auto tm = TrafficMatrix::MatrixB(ft.num_racks(), ft.config().racks_per_pod);
  const auto sizes = MakeWebServer();
  WorkloadSpec wspec;
  wspec.num_flows = 3000;
  wspec.max_load = 0.5;
  wspec.seed = 8;
  const auto wl = GenerateWorkload(ft, tm, *sizes, wspec);

  NetConfig cfg;
  const auto truth = RunPacketSim(ft.topo(), wl.flows, cfg);

  PathDecomposition decomp(ft.topo(), wl.flows);
  Rng rng(6);
  const auto sample = SamplePaths(decomp, 60, rng);
  std::vector<double> path_sldn, true_sldn;
  for (std::size_t idx : sample) {
    const PathScenario sc = BuildPathScenario(ft.topo(), wl.flows, decomp, idx);
    const auto res = RunPathPktSim(sc, cfg);
    for (std::size_t i = 0; i < sc.flows.size(); ++i) {
      if (!sc.is_fg[i]) continue;
      path_sldn.push_back(res[i].slowdown);
      true_sldn.push_back(truth[static_cast<std::size_t>(sc.orig_id[i])].slowdown);
    }
  }
  ASSERT_GT(path_sldn.size(), 30u);
  const double p99_path = Percentile(path_sldn, 99);
  const double p99_true = Percentile(true_sldn, 99);
  EXPECT_NEAR(p99_path / p99_true, 1.0, 0.35);
  // Medians should agree even more tightly.
  EXPECT_NEAR(Percentile(path_sldn, 50) / Percentile(true_sldn, 50), 1.0, 0.15);
}

TEST(EstimatorIntegration, MonotoneAggregates) {
  // Network estimates must have monotone percentile vectors.
  const FatTree ft(FatTreeConfig::Small(2.0));
  const auto tm = TrafficMatrix::MatrixA(ft.num_racks(), ft.config().racks_per_pod);
  const auto sizes = MakeCacheFollower();
  WorkloadSpec wspec;
  wspec.num_flows = 1500;
  wspec.seed = 10;
  const auto wl = GenerateWorkload(ft, tm, *sizes, wspec);
  NetConfig cfg;
  M3Options opts;
  opts.num_paths = 10;
  const auto est = RunFlowSimOnly(ft.topo(), wl.flows, cfg, opts);
  for (int b = 0; b < kNumOutputBuckets; ++b) {
    const auto& pct = est.bucket_pct[static_cast<std::size_t>(b)];
    for (std::size_t p = 1; p < pct.size(); ++p) EXPECT_LE(pct[p - 1], pct[p]);
  }
  for (std::size_t p = 1; p < est.combined_pct.size(); ++p) {
    EXPECT_LE(est.combined_pct[p - 1], est.combined_pct[p]);
  }
}

// ------------------------------------------------------ failure injection ---

TEST(FailureInjection, PacketSimMaxTimeGuardThrows) {
  // A flow that cannot finish within the time budget triggers the guard.
  Topology t;
  const NodeId a = t.AddNode(NodeKind::kHost);
  const NodeId b = t.AddNode(NodeKind::kHost);
  const auto [ab, ba] = t.AddDuplexLink(a, b, GbpsToBpns(0.001), 1000);  // 1 Mbps
  (void)ba;
  Flow f{0, a, b, 100 * kMB, 0, {ab}};  // ~800s of serialization
  NetConfig cfg;
  PacketSimulator sim(t, {f}, cfg);
  EXPECT_THROW(sim.Run(/*max_time=*/1 * kSec), std::runtime_error);
}

TEST(FailureInjection, LossyLinkStillCompletesViaRetransmission) {
  // Pathological 2KB buffer with ECN off: heavy loss, but go-back-N plus
  // RTO must still complete every flow.
  Topology t;
  const NodeId a = t.AddNode(NodeKind::kHost);
  const NodeId s = t.AddNode(NodeKind::kSwitch);
  const NodeId b = t.AddNode(NodeKind::kHost);
  const auto [as, _1] = t.AddDuplexLink(a, s, GbpsToBpns(10), 1000);
  const auto [sb, _2] = t.AddDuplexLink(s, b, GbpsToBpns(1), 1000);  // slow egress
  (void)_1; (void)_2;
  NetConfig cfg;
  cfg.buffer = 2 * kKB;
  cfg.dctcp_k = 1000 * kKB;
  cfg.init_window = 30 * kKB;
  std::vector<Flow> flows;
  for (int i = 0; i < 5; ++i) {
    flows.push_back(Flow{static_cast<FlowId>(i), a, b, 50 * kKB, i * 10 * kUs, {as, sb}});
  }
  PacketSimulator sim(t, flows, cfg);
  const auto res = sim.Run();
  EXPECT_GT(sim.stats().drops, 0u);
  for (const auto& r : res) EXPECT_GT(r.fct, 0);
}

TEST(FailureInjection, EstimatorRejectsMismatchedInputs) {
  const FatTree ft(FatTreeConfig::Small(1.0));
  // Flows that reference links outside the topology must be rejected by
  // the packet simulator path.
  Flow bogus;
  bogus.id = 0;
  bogus.src = ft.host(0);
  bogus.dst = ft.host(1);
  bogus.size = 1000;
  bogus.path = {static_cast<LinkId>(ft.topo().num_links() + 5)};
  NetConfig cfg;
  EXPECT_THROW(PacketSimulator(ft.topo(), {bogus}, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace m3
