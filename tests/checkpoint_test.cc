// Crash-safety of the checkpoint subsystem: v2 round-trips with optimizer
// and trainer state, v1 backward compatibility, corruption detection
// (truncation at every offset, bit flips, hostile length fields), last-K
// rotation with fallback, and bitwise-deterministic resume.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/model.h"
#include "core/trainer.h"
#include "ml/checkpoint.h"
#include "util/rng.h"

namespace m3 {
namespace {

namespace fs = std::filesystem;

// Fresh scratch directory per test so rotation chains don't collide.
std::string ScratchDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/m3_ckpt_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  return std::string(std::istreambuf_iterator<char>(is), {});
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

template <typename T>
void Put(std::string& buf, T v) {
  buf.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

// Wraps a raw payload in a valid v2 header (correct size and CRC), so tests
// can exercise the *structural* validation behind the checksum.
std::string WrapV2(const std::string& payload) {
  std::string file;
  Put<std::uint32_t>(file, 0x334D4C4Bu);  // magic "KLM3"
  Put<std::uint32_t>(file, 2);
  Put<std::uint64_t>(file, payload.size());
  Put<std::uint32_t>(file, ml::Crc32(payload.data(), payload.size()));
  file += payload;
  return file;
}

ml::Parameter MakeParam(const std::string& name, int rows, int cols,
                        std::uint64_t seed) {
  Rng rng(seed);
  ml::Parameter p(name, ml::Tensor::Randn(rows, cols, rng, 1.0f));
  p.adam_m = ml::Tensor::Randn(rows, cols, rng, 0.1f);
  p.adam_v = ml::Tensor::Randn(rows, cols, rng, 0.01f);
  return p;
}

void ExpectTensorsEq(const ml::Tensor& a, const ml::Tensor& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.vec()[i], b.vec()[i]) << what << " diverges at element " << i;
  }
}

TEST(CheckpointV2, RoundTripWithOptimizerAndTrainerState) {
  const std::string path = ScratchDir("roundtrip") + "/m.ckpt";
  ml::Parameter a = MakeParam("layer.a", 3, 4, 11);
  ml::Parameter b = MakeParam("layer.b", 1, 7, 12);

  ml::CheckpointExtra extra;
  extra.has_optimizer = true;
  extra.adam_step = 1234;
  extra.has_trainer = true;
  extra.epochs_done = 17;
  extra.batch_offset = 40;
  extra.partial_epoch_loss = 0.625;
  extra.partial_epoch_samples = 40;
  extra.lr = 2.5e-4f;
  extra.split_seed = 99;
  Rng stream(7);
  stream.Normal();  // populate the Box-Muller cache
  extra.shuffle_rng = stream.SaveState();

  ml::SaveCheckpoint(path, {&a, &b}, &extra);
  EXPECT_TRUE(ml::IsCheckpointFile(path));

  ml::Parameter a2("layer.a", ml::Tensor::Zeros(3, 4));
  ml::Parameter b2("layer.b", ml::Tensor::Zeros(1, 7));
  const ml::CheckpointInfo info = ml::LoadCheckpoint(path, {&a2, &b2});

  EXPECT_EQ(info.version, 2u);
  ASSERT_TRUE(info.extra.has_optimizer);
  EXPECT_EQ(info.extra.adam_step, 1234);
  ASSERT_TRUE(info.extra.has_trainer);
  EXPECT_EQ(info.extra.epochs_done, 17);
  EXPECT_EQ(info.extra.batch_offset, 40);
  EXPECT_EQ(info.extra.partial_epoch_loss, 0.625);
  EXPECT_EQ(info.extra.partial_epoch_samples, 40u);
  EXPECT_EQ(info.extra.lr, 2.5e-4f);
  EXPECT_EQ(info.extra.split_seed, 99u);
  EXPECT_EQ(info.extra.shuffle_rng.state, extra.shuffle_rng.state);
  EXPECT_EQ(info.extra.shuffle_rng.inc, extra.shuffle_rng.inc);
  EXPECT_EQ(info.extra.shuffle_rng.seed, extra.shuffle_rng.seed);
  EXPECT_EQ(info.extra.shuffle_rng.cached_normal, extra.shuffle_rng.cached_normal);
  EXPECT_EQ(info.extra.shuffle_rng.has_cached_normal,
            extra.shuffle_rng.has_cached_normal);

  ExpectTensorsEq(a2.value, a.value, "a.value");
  ExpectTensorsEq(b2.value, b.value, "b.value");
  ExpectTensorsEq(a2.adam_m, a.adam_m, "a.adam_m");
  ExpectTensorsEq(a2.adam_v, a.adam_v, "a.adam_v");
  ExpectTensorsEq(b2.adam_m, b.adam_m, "b.adam_m");
  ExpectTensorsEq(b2.adam_v, b.adam_v, "b.adam_v");

  // A restored RNG continues the stream exactly (including the cached
  // Box-Muller variate).
  Rng replayed(1);
  replayed.RestoreState(info.extra.shuffle_rng);
  EXPECT_EQ(stream.Normal(), replayed.Normal());
  EXPECT_EQ(stream.NextU64(), replayed.NextU64());
}

TEST(CheckpointV2, ParamsOnlySaveResetsAdamState) {
  const std::string path = ScratchDir("paramsonly") + "/m.ckpt";
  ml::Parameter a = MakeParam("a", 2, 2, 21);
  ml::SaveCheckpoint(path, {&a});  // no extra sections

  ml::Parameter a2 = MakeParam("a", 2, 2, 22);  // nonzero moments to clobber
  const ml::CheckpointInfo info = ml::LoadCheckpoint(path, {&a2});
  EXPECT_FALSE(info.extra.has_optimizer);
  EXPECT_FALSE(info.extra.has_trainer);
  ExpectTensorsEq(a2.value, a.value, "value");
  for (std::size_t i = 0; i < a2.adam_m.size(); ++i) {
    ASSERT_EQ(a2.adam_m.vec()[i], 0.0f);
    ASSERT_EQ(a2.adam_v.vec()[i], 0.0f);
  }
}

TEST(CheckpointV2, V1BackwardCompatLoad) {
  const std::string path = ScratchDir("v1compat") + "/m.ckpt";
  Rng rng(5);
  const ml::Tensor vals = ml::Tensor::Randn(2, 3, rng, 1.0f);

  // Hand-written v1 file: [magic|version=1|count|name_len|name|rows|cols|data].
  std::string file;
  Put<std::uint32_t>(file, 0x334D4C4Bu);
  Put<std::uint32_t>(file, 1);
  Put<std::uint32_t>(file, 1);
  Put<std::uint32_t>(file, 1);
  file += 'x';
  Put<std::int32_t>(file, 2);
  Put<std::int32_t>(file, 3);
  file.append(reinterpret_cast<const char*>(vals.data()), vals.size() * sizeof(float));
  WriteFileBytes(path, file);

  ml::Parameter p = MakeParam("x", 2, 3, 33);
  const ml::CheckpointInfo info = ml::LoadCheckpoint(path, {&p});
  EXPECT_EQ(info.version, 1u);
  EXPECT_FALSE(info.extra.has_optimizer);
  EXPECT_FALSE(info.extra.has_trainer);
  ExpectTensorsEq(p.value, vals, "value");
  for (std::size_t i = 0; i < p.adam_m.size(); ++i) {
    ASSERT_EQ(p.adam_m.vec()[i], 0.0f);  // v1 carries no optimizer state
  }
}

TEST(CheckpointV2, TruncationAtEveryOffsetDetected) {
  const std::string dir = ScratchDir("truncate");
  const std::string path = dir + "/m.ckpt";
  ml::Parameter a = MakeParam("a", 2, 3, 41);
  ml::Parameter b = MakeParam("b", 1, 4, 42);
  ml::CheckpointExtra extra;
  extra.has_optimizer = true;
  extra.adam_step = 7;
  extra.has_trainer = true;
  extra.lr = 1e-3f;
  ml::SaveCheckpoint(path, {&a, &b}, &extra);

  const std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 20u);
  const std::string cut = dir + "/cut.ckpt";
  ml::Parameter a2("a", ml::Tensor::Zeros(2, 3));
  ml::Parameter b2("b", ml::Tensor::Zeros(1, 4));
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    WriteFileBytes(cut, bytes.substr(0, len));
    EXPECT_THROW(ml::LoadCheckpoint(cut, {&a2, &b2}), std::runtime_error)
        << "truncation at byte " << len << " was not detected";
  }
  // The untruncated file still loads.
  WriteFileBytes(cut, bytes);
  EXPECT_NO_THROW(ml::LoadCheckpoint(cut, {&a2, &b2}));
}

TEST(CheckpointV2, BitFlipAnywhereDetected) {
  const std::string dir = ScratchDir("bitflip");
  const std::string path = dir + "/m.ckpt";
  ml::Parameter a = MakeParam("a", 2, 3, 51);
  ml::CheckpointExtra extra;
  extra.has_optimizer = true;
  extra.has_trainer = true;
  ml::SaveCheckpoint(path, {&a}, &extra);

  const std::string bytes = ReadFileBytes(path);
  const std::string flipped_path = dir + "/flipped.ckpt";
  ml::Parameter a2("a", ml::Tensor::Zeros(2, 3));
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string flipped = bytes;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x01);
    WriteFileBytes(flipped_path, flipped);
    EXPECT_THROW(ml::LoadCheckpoint(flipped_path, {&a2}), std::runtime_error)
        << "bit flip at byte " << i << " was not detected";
  }
}

TEST(CheckpointV2, HostileLengthFieldsRejectedCleanly) {
  const std::string dir = ScratchDir("hostile");
  ml::Parameter p("x", ml::Tensor::Zeros(2, 2));

  // Absurd name length (would previously size a multi-GB string).
  {
    std::string payload;
    Put<std::uint32_t>(payload, 0);           // flags
    Put<std::uint32_t>(payload, 1);           // count
    Put<std::uint32_t>(payload, 0xFFFFFFFFu); // name_len
    WriteFileBytes(dir + "/name.ckpt", WrapV2(payload));
    EXPECT_THROW(ml::LoadCheckpoint(dir + "/name.ckpt", {&p}), std::runtime_error);
  }
  // Negative rows: must not reach the Tensor constructor.
  {
    std::string payload;
    Put<std::uint32_t>(payload, 0);
    Put<std::uint32_t>(payload, 1);
    Put<std::uint32_t>(payload, 1);
    payload += 'x';
    Put<std::int32_t>(payload, -1);
    Put<std::int32_t>(payload, 4);
    WriteFileBytes(dir + "/neg.ckpt", WrapV2(payload));
    EXPECT_THROW(ml::LoadCheckpoint(dir + "/neg.ckpt", {&p}), std::runtime_error);
  }
  // Huge rows*cols whose product would overflow a naive 32-bit size: the
  // declared data cannot fit in the payload, so this must throw before any
  // allocation sized from it.
  {
    std::string payload;
    Put<std::uint32_t>(payload, 0);
    Put<std::uint32_t>(payload, 1);
    Put<std::uint32_t>(payload, 1);
    payload += 'x';
    Put<std::int32_t>(payload, 1 << 20);
    Put<std::int32_t>(payload, 1 << 20);
    WriteFileBytes(dir + "/huge.ckpt", WrapV2(payload));
    EXPECT_THROW(ml::LoadCheckpoint(dir + "/huge.ckpt", {&p}), std::runtime_error);
  }
  // v1 files get the same bounds validation (they have no CRC to catch it).
  {
    std::string file;
    Put<std::uint32_t>(file, 0x334D4C4Bu);
    Put<std::uint32_t>(file, 1);
    Put<std::uint32_t>(file, 1);
    Put<std::uint32_t>(file, 0xFFFFFFFFu);  // name_len
    WriteFileBytes(dir + "/v1.ckpt", file);
    EXPECT_THROW(ml::LoadCheckpoint(dir + "/v1.ckpt", {&p}), std::runtime_error);
  }
}

TEST(CheckpointV2, LoadFailureLeavesParamsUntouched) {
  const std::string dir = ScratchDir("untouched");
  const std::string path = dir + "/m.ckpt";
  ml::Parameter a = MakeParam("a", 2, 3, 61);
  ml::SaveCheckpoint(path, {&a});

  std::string bytes = ReadFileBytes(path);
  bytes.back() = static_cast<char>(bytes.back() ^ 0x10);  // corrupt the tail
  WriteFileBytes(path, bytes);

  ml::Parameter a2 = MakeParam("a", 2, 3, 62);
  const ml::Tensor before_value = a2.value;
  const ml::Tensor before_m = a2.adam_m;
  EXPECT_THROW(ml::LoadCheckpoint(path, {&a2}), std::runtime_error);
  ExpectTensorsEq(a2.value, before_value, "value after failed load");
  ExpectTensorsEq(a2.adam_m, before_m, "adam_m after failed load");
}

TEST(CheckpointV2, AtomicSaveNeverLeavesPartialFile) {
  // The temp file from an in-progress save must not shadow the target: a
  // good checkpoint followed by a save that leaves a stale .tmp (simulating
  // a crash between write and rename) still loads the good file.
  const std::string dir = ScratchDir("atomic");
  const std::string path = dir + "/m.ckpt";
  ml::Parameter a = MakeParam("a", 2, 3, 71);
  ml::SaveCheckpoint(path, {&a});
  WriteFileBytes(path + ".tmp", "partial garbage from a crashed writer");

  ml::Parameter a2("a", ml::Tensor::Zeros(2, 3));
  EXPECT_NO_THROW(ml::LoadCheckpoint(path, {&a2}));
  ExpectTensorsEq(a2.value, a.value, "value");
}

TEST(CheckpointV2, ParentDirectoriesCreated) {
  const std::string dir = ScratchDir("mkdirs");
  const std::string path = dir + "/a/b/c/m.ckpt";
  ml::Parameter a = MakeParam("a", 2, 2, 81);
  EXPECT_NO_THROW(ml::SaveCheckpoint(path, {&a}));
  EXPECT_TRUE(ml::IsCheckpointFile(path));

  // M3Model::Save shares the same path (the old behavior was an opaque
  // failure when models/ did not exist).
  M3Model model;
  EXPECT_NO_THROW(model.Save(dir + "/x/y/model.ckpt"));
  EXPECT_TRUE(ml::IsCheckpointFile(dir + "/x/y/model.ckpt"));
}

TEST(CheckpointV2, RotationKeepsLastKAndFallsBackPastCorruption) {
  const std::string dir = ScratchDir("rotation");
  const std::string path = dir + "/m.ckpt";
  ml::Parameter p("p", ml::Tensor::Zeros(1, 1));

  // Four generations with keep=3: generation 0 falls off the end.
  for (int gen = 0; gen < 4; ++gen) {
    p.value.at(0, 0) = static_cast<float>(gen);
    ml::SaveCheckpointRotating(path, {&p}, nullptr, 3);
  }
  EXPECT_TRUE(fs::exists(path));
  EXPECT_TRUE(fs::exists(path + ".1"));
  EXPECT_TRUE(fs::exists(path + ".2"));
  EXPECT_FALSE(fs::exists(path + ".3"));

  ml::Parameter q("p", ml::Tensor::Zeros(1, 1));
  ml::RecoveredCheckpoint rec = ml::LoadNewestValidCheckpoint(path, {&q}, 3);
  EXPECT_EQ(rec.path, path);
  EXPECT_EQ(q.value.at(0, 0), 3.0f);

  // Truncate the newest: recovery falls back to the previous generation.
  const std::string newest = ReadFileBytes(path);
  WriteFileBytes(path, newest.substr(0, newest.size() / 2));
  rec = ml::LoadNewestValidCheckpoint(path, {&q}, 3);
  EXPECT_EQ(rec.path, path + ".1");
  EXPECT_EQ(q.value.at(0, 0), 2.0f);

  // Corrupt that one too: falls back to the oldest retained generation.
  WriteFileBytes(path + ".1", "junk");
  rec = ml::LoadNewestValidCheckpoint(path, {&q}, 3);
  EXPECT_EQ(rec.path, path + ".2");
  EXPECT_EQ(q.value.at(0, 0), 1.0f);

  // Nothing valid left: a clean error, not a crash.
  WriteFileBytes(path + ".2", "junk");
  EXPECT_THROW(ml::LoadNewestValidCheckpoint(path, {&q}, 3), std::runtime_error);
}

// ------------------------------------------------------------------ resume --

// Small model + synthetic tensor-only samples (same pattern as
// trainer_parallel_test.cc) keep each train step cheap while exercising the
// full code path.
M3ModelConfig SmallConfig() {
  M3ModelConfig cfg;
  cfg.feat_dim = 24;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  cfg.ff_dim = 48;
  cfg.spec_dim = 5;
  cfg.mlp_hidden = 40;
  cfg.out_dim = 60;
  cfg.max_seq = 4;
  cfg.init_seed = 77;
  return cfg;
}

std::vector<Sample> SyntheticSamples(const M3ModelConfig& cfg, int count,
                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Sample> samples(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Sample& s = samples[static_cast<std::size_t>(i)];
    const int hops = 1 + static_cast<int>(rng.NextBounded(
                             static_cast<std::size_t>(cfg.max_seq)));
    s.fg_feat = ml::Tensor::Randn(1, cfg.feat_dim, rng, 1.0f);
    s.bg_seq = ml::Tensor::Randn(hops, cfg.feat_dim, rng, 1.0f);
    s.spec = ml::Tensor::Randn(1, cfg.spec_dim, rng, 1.0f);
    s.target = ml::Tensor::Randn(1, cfg.out_dim, rng, 0.5f);
    s.baseline = ml::Tensor::Randn(1, cfg.out_dim, rng, 0.5f);
    s.mask = ml::Tensor::Zeros(1, cfg.out_dim);
    for (int j = 0; j < cfg.out_dim; ++j) {
      s.mask.at(0, j) = rng.NextBounded(4) == 0 ? 0.0f : 1.0f;
    }
  }
  return samples;
}

TrainOptions ResumeTrainOptions(int epochs) {
  TrainOptions opts;
  opts.epochs = epochs;
  opts.batch_size = 5;  // 23 samples -> ragged tail batch
  opts.lr = 1e-3f;
  opts.lr_decay_every = 3;  // exercise LR-decay restoration across resume
  opts.val_frac = 0.2;
  opts.seed = 9;
  return opts;
}

void ExpectModelsBitwiseEqual(M3Model& want, M3Model& got, const char* what) {
  const std::vector<ml::Parameter*> w = want.params();
  const std::vector<ml::Parameter*> g = got.params();
  ASSERT_EQ(w.size(), g.size());
  for (std::size_t p = 0; p < w.size(); ++p) {
    ASSERT_EQ(w[p]->value.size(), g[p]->value.size());
    for (std::size_t i = 0; i < w[p]->value.size(); ++i) {
      ASSERT_EQ(w[p]->value.vec()[i], g[p]->value.vec()[i])
          << what << ": parameter " << w[p]->name << " diverges at element " << i;
    }
  }
}

TEST(Resume, BitwiseIdenticalAfterEpochBoundaryResume) {
  const M3ModelConfig cfg = SmallConfig();
  const std::vector<Sample> samples = SyntheticSamples(cfg, 23, 42);
  const std::string dir = ScratchDir("resume_boundary");

  // Uninterrupted reference: train(8).
  M3Model full(cfg);
  const TrainReport full_report = TrainModel(full, samples, ResumeTrainOptions(8));

  // train(4) with checkpointing, then resume into a *fresh* model to 8.
  M3Model first(cfg);
  TrainOptions opts4 = ResumeTrainOptions(4);
  opts4.checkpoint_path = dir + "/m.ckpt";
  opts4.checkpoint_every = 4;
  TrainModel(first, samples, opts4);

  M3Model second(cfg);
  TrainOptions opts8 = ResumeTrainOptions(8);
  opts8.checkpoint_path = dir + "/m.ckpt";
  opts8.resume_from = dir + "/m.ckpt";
  opts8.seed = 12345;  // must be ignored: the stored split seed wins
  const TrainReport resumed = TrainModel(second, samples, opts8);

  EXPECT_EQ(resumed.start_epoch, 4);
  EXPECT_EQ(resumed.resumed_from, dir + "/m.ckpt");
  ASSERT_EQ(resumed.train_loss.size(), 4u);
  // The resumed epochs' losses match the uninterrupted run's exactly.
  for (std::size_t e = 0; e < 4; ++e) {
    EXPECT_EQ(resumed.train_loss[e], full_report.train_loss[e + 4])
        << "train loss differs at resumed epoch " << e;
    EXPECT_EQ(resumed.val_loss[e], full_report.val_loss[e + 4])
        << "val loss differs at resumed epoch " << e;
  }
  ExpectModelsBitwiseEqual(full, second, "train(8) vs train(4)+resume(4)");
}

TEST(Resume, BitwiseIdenticalAfterMidEpochGracefulStop) {
  const M3ModelConfig cfg = SmallConfig();
  const std::vector<Sample> samples = SyntheticSamples(cfg, 23, 42);
  const std::string dir = ScratchDir("resume_midepoch");

  M3Model full(cfg);
  const TrainReport full_report = TrainModel(full, samples, ResumeTrainOptions(3));

  // A stop request raised before training stops it after the first batch,
  // mid-epoch-0; the trainer must save a mid-epoch checkpoint.
  M3Model first(cfg);
  TrainOptions opts = ResumeTrainOptions(3);
  opts.checkpoint_path = dir + "/m.ckpt";
  RequestTrainStop();
  const TrainReport stopped = TrainModel(first, samples, opts);
  ClearTrainStop();
  EXPECT_TRUE(stopped.interrupted);
  EXPECT_TRUE(stopped.train_loss.empty());  // epoch 0 never completed
  ASSERT_TRUE(ml::IsCheckpointFile(dir + "/m.ckpt"));

  M3Model second(cfg);
  TrainOptions resume_opts = ResumeTrainOptions(3);
  resume_opts.checkpoint_path = dir + "/m.ckpt";
  resume_opts.resume_from = dir + "/m.ckpt";
  const TrainReport resumed = TrainModel(second, samples, resume_opts);

  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.start_epoch, 0);  // epoch 0 resumes from its interior
  ASSERT_EQ(resumed.train_loss.size(), full_report.train_loss.size());
  for (std::size_t e = 0; e < full_report.train_loss.size(); ++e) {
    // The partial-epoch loss carried through the checkpoint makes even the
    // interrupted epoch's reported loss identical.
    EXPECT_EQ(resumed.train_loss[e], full_report.train_loss[e])
        << "train loss differs at epoch " << e;
    EXPECT_EQ(resumed.val_loss[e], full_report.val_loss[e])
        << "val loss differs at epoch " << e;
  }
  ExpectModelsBitwiseEqual(full, second, "uninterrupted vs mid-epoch stop+resume");
}

TEST(Resume, FallsBackToOlderCheckpointWhenNewestTruncated) {
  const M3ModelConfig cfg = SmallConfig();
  const std::vector<Sample> samples = SyntheticSamples(cfg, 23, 42);
  const std::string dir = ScratchDir("resume_fallback");

  M3Model full(cfg);
  const TrainReport full_report = TrainModel(full, samples, ResumeTrainOptions(6));
  (void)full_report;

  // Checkpoint every epoch for 4 epochs, then simulate a crash that
  // truncated the newest checkpoint (epoch 4). Resume must fall back to the
  // epoch-3 checkpoint and still converge to the identical final state.
  M3Model first(cfg);
  TrainOptions opts4 = ResumeTrainOptions(4);
  opts4.checkpoint_path = dir + "/m.ckpt";
  opts4.checkpoint_every = 1;
  opts4.checkpoint_keep = 3;
  TrainModel(first, samples, opts4);

  const std::string newest = ReadFileBytes(dir + "/m.ckpt");
  WriteFileBytes(dir + "/m.ckpt", newest.substr(0, newest.size() - 37));

  M3Model second(cfg);
  TrainOptions opts6 = ResumeTrainOptions(6);
  opts6.checkpoint_path = dir + "/m.ckpt";
  opts6.resume_from = dir + "/m.ckpt";
  const TrainReport resumed = TrainModel(second, samples, opts6);

  EXPECT_EQ(resumed.resumed_from, dir + "/m.ckpt.1");
  EXPECT_EQ(resumed.start_epoch, 3);  // epoch-4 state was lost; 3 survived
  ExpectModelsBitwiseEqual(full, second, "fallback resume vs uninterrupted");
}

TEST(Resume, MissingCheckpointIsACleanError) {
  const M3ModelConfig cfg = SmallConfig();
  const std::vector<Sample> samples = SyntheticSamples(cfg, 8, 42);
  M3Model model(cfg);
  TrainOptions opts = ResumeTrainOptions(2);
  opts.resume_from = ScratchDir("resume_missing") + "/nope.ckpt";
  EXPECT_THROW(TrainModel(model, samples, opts), std::runtime_error);
}

TEST(Trainer, EmptyTrainSplitReturnsEmptyReport) {
  const M3ModelConfig cfg = SmallConfig();
  M3Model model(cfg);

  // No samples at all.
  TrainOptions opts = ResumeTrainOptions(3);
  TrainReport report = TrainModel(model, {}, opts);
  EXPECT_TRUE(report.train_loss.empty());
  EXPECT_TRUE(report.val_loss.empty());

  // Every sample lands in the validation split.
  const std::vector<Sample> samples = SyntheticSamples(cfg, 6, 42);
  opts.val_frac = 1.0;
  report = TrainModel(model, samples, opts);
  EXPECT_TRUE(report.train_loss.empty());

  // Zero epochs: no losses, no UB in callers that guard .back().
  opts.val_frac = 0.2;
  opts.epochs = 0;
  report = TrainModel(model, samples, opts);
  EXPECT_TRUE(report.train_loss.empty());
}

}  // namespace
}  // namespace m3
