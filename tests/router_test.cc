// Sharded-fleet tests: the consistent-hash ring and recoverable breaker
// (serve/shardmap.h), the v3 shard wire messages under the usual hostile
// treatment, shard-side slot execution determinism (serve/exec.h), and the
// scatter-gather router end-to-end against a live in-process fleet —
// including the acceptance property that a fault-free scattered answer is
// bitwise identical to a single daemon's, and that shard loss degrades
// answers instead of failing them.
//
// Suite names here (HashRing / ShardBreaker / ShardWire / ShardExec /
// RouterChaos) are deliberately outside the TSan tier's suite regex in
// tools/check.sh: RouterChaos spins real sockets and whole services, which
// belongs in the plain and chaos tiers.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/exec.h"
#include "serve/registry.h"
#include "serve/router.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve/shardmap.h"
#include "serve/wire.h"
#include "topo/fat_tree.h"
#include "workload/generator.h"
#include "workload/size_dist.h"
#include "workload/traffic_matrix.h"

namespace m3::serve {
namespace {

// ------------------------------------------------------------- hash ring --

Hash128 KeyOf(int i) {
  Hasher h;
  h.Str("router-test-key").I32(i);
  return h.Finish();
}

TEST(HashRing, OwnerIsDeterministicAcrossInstances) {
  const std::vector<std::string> shards = {"tcp:a:1", "tcp:b:1", "tcp:c:1"};
  const HashRing r1(shards, 64);
  const HashRing r2(shards, 64);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(r1.Owner(KeyOf(i)), r2.Owner(KeyOf(i))) << "key " << i;
  }
}

TEST(HashRing, KeysSpreadAcrossAllShards) {
  const HashRing ring({"tcp:a:1", "tcp:b:1", "tcp:c:1"}, 64);
  std::array<int, 3> counts{};
  constexpr int kKeys = 3000;
  for (int i = 0; i < kKeys; ++i) {
    const int owner = ring.Owner(KeyOf(i));
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, 3);
    ++counts[static_cast<std::size_t>(owner)];
  }
  // With 64 vnodes the split is near-uniform; 15% per shard is a loose
  // floor that only a broken ring would miss.
  for (int c : counts) EXPECT_GT(c, kKeys * 15 / 100);
}

TEST(HashRing, PreferenceIsDistinctOwnerFirstAndCapped) {
  const HashRing ring({"s0", "s1", "s2", "s3"}, 32);
  for (int i = 0; i < 200; ++i) {
    const Hash128 key = KeyOf(i);
    const std::vector<int> all = ring.Preference(key);
    ASSERT_EQ(all.size(), 4u);
    EXPECT_EQ(all[0], ring.Owner(key));
    std::vector<int> sorted = all;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3}));  // each shard once
    const std::vector<int> two = ring.Preference(key, 2);
    ASSERT_EQ(two.size(), 2u);
    EXPECT_EQ(two[0], all[0]);
    EXPECT_EQ(two[1], all[1]);
  }
}

TEST(HashRing, RemovingOneShardMovesOnlyItsKeys) {
  const std::vector<std::string> full = {"s0", "s1", "s2"};
  const std::vector<std::string> less = {"s0", "s1"};  // s2 removed
  const HashRing before(full, 64);
  const HashRing after(less, 64);
  int moved = 0, kept = 0;
  for (int i = 0; i < 1000; ++i) {
    const Hash128 key = KeyOf(i);
    const std::string owner_before = full[static_cast<std::size_t>(before.Owner(key))];
    const std::string owner_after = less[static_cast<std::size_t>(after.Owner(key))];
    if (owner_before == "s2") {
      ++moved;  // orphaned keys must land somewhere
    } else {
      // The consistency property: keys not owned by the removed shard
      // keep their owner (no fleet-wide reshuffle on a shard bounce).
      EXPECT_EQ(owner_after, owner_before) << "key " << i;
      ++kept;
    }
  }
  EXPECT_GT(moved, 0);
  EXPECT_GT(kept, 0);
}

TEST(HashRing, EmptyRingOwnsNothing) {
  const HashRing ring({}, 64);
  EXPECT_EQ(ring.num_shards(), 0u);
  EXPECT_EQ(ring.Owner(KeyOf(1)), -1);
  EXPECT_TRUE(ring.Preference(KeyOf(1)).empty());
}

// --------------------------------------------------------- shard breaker --

ShardBreakerOptions FastBreaker() {
  ShardBreakerOptions o;
  o.threshold = 3;
  o.window_seconds = 10.0;
  o.cooloff_seconds = 0.05;
  return o;
}

TEST(ShardBreaker, TripsAtThresholdAndBlocksDispatch) {
  ShardBreaker b(FastBreaker());
  EXPECT_TRUE(b.Allow());
  b.RecordFailure();
  b.RecordFailure();
  EXPECT_FALSE(b.open());
  EXPECT_TRUE(b.Allow());  // below threshold: still closed
  b.RecordFailure();
  EXPECT_TRUE(b.open());
  EXPECT_EQ(b.trips(), 1u);
  EXPECT_FALSE(b.Allow());  // freshly open: inside the cooloff
}

TEST(ShardBreaker, HalfOpenAdmitsExactlyOneProbePerCooloff) {
  ShardBreaker b(FastBreaker());
  for (int i = 0; i < 3; ++i) b.RecordFailure();
  ASSERT_TRUE(b.open());
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_TRUE(b.Allow());   // the half-open probe
  EXPECT_FALSE(b.Allow());  // second caller in the same cooloff: no
  // A successful probe closes the breaker for good.
  b.RecordSuccess();
  EXPECT_FALSE(b.open());
  EXPECT_TRUE(b.Allow());
  EXPECT_TRUE(b.Allow());
}

TEST(ShardBreaker, FailedProbeRearmsTheCooloff) {
  ShardBreaker b(FastBreaker());
  for (int i = 0; i < 3; ++i) b.RecordFailure();
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  ASSERT_TRUE(b.Allow());
  b.RecordFailure();        // the probe found the shard still down
  EXPECT_TRUE(b.open());
  EXPECT_FALSE(b.Allow());  // back inside a full cooloff
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_TRUE(b.Allow());   // ...after which one probe goes again
}

TEST(ShardBreaker, SuccessClearsTheFailureWindow) {
  ShardBreaker b(FastBreaker());
  b.RecordFailure();
  b.RecordFailure();
  b.RecordSuccess();  // window cleared: the next failures start from zero
  b.RecordFailure();
  b.RecordFailure();
  EXPECT_FALSE(b.open());
  EXPECT_EQ(b.trips(), 0u);
}

// ----------------------------------------------------------- wire (v3) ----

QueryRequest SampleShardQuery() {
  QueryRequest req;
  req.oversub = 4.0;
  req.topo.pods = 2;
  req.topo.racks_per_pod = 2;
  req.topo.hosts_per_rack = 4;
  req.topo.fabric_per_pod = 2;
  req.topo.spines_per_plane = 2;
  req.num_paths = 5;
  req.seed = 42;
  req.strict = true;
  for (int i = 0; i < 2; ++i) {
    WireFlow f;
    f.id = i;
    f.src_host = i;
    f.dst_host = 5 + i;
    f.size = 777 * (i + 1);
    req.flows.push_back(f);
  }
  return req;
}

TEST(ShardWire, QueryRequestTopoRoundTripsAndChangesTheCacheKey) {
  const QueryRequest req = SampleShardQuery();
  const StatusOr<QueryRequest> got = DecodeQueryRequest(EncodeQueryRequest(req));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got->topo == req.topo);
  EXPECT_FALSE(got->topo.IsDefault());

  QueryRequest other = req;
  other.topo.pods = 4;
  const Hash128 digest = HashBytes("m", 1);
  EXPECT_NE(QueryCacheKey(req, digest), QueryCacheKey(other, digest));
}

TEST(ShardWire, ShardQueryRequestRoundTrip) {
  ShardQueryRequest req;
  req.query = SampleShardQuery();
  req.slots = {0, 3, 4};
  const StatusOr<ShardQueryRequest> got =
      DecodeShardQueryRequest(EncodeShardQueryRequest(req));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->slots, req.slots);
  EXPECT_EQ(got->query.num_paths, req.query.num_paths);
  EXPECT_EQ(got->query.seed, req.query.seed);
  EXPECT_TRUE(got->query.topo == req.query.topo);
  ASSERT_EQ(got->query.flows.size(), req.query.flows.size());
  EXPECT_EQ(got->query.flows[1].size, req.query.flows[1].size);
  // The embedded query round-trips its cache key (a shard rebuilds the
  // router's placement keys from exactly these bytes).
  const Hash128 digest = HashBytes("m", 1);
  EXPECT_EQ(QueryCacheKey(req.query, digest), QueryCacheKey(got->query, digest));
}

ShardQueryResponse SampleShardResponse() {
  ShardQueryResponse resp;
  resp.status = Status::Degraded("1 slot degraded");
  resp.degradation.paths_ok = 2;
  resp.degradation.paths_degraded = 1;
  resp.degradation.first_error = "slot 3: injected";
  resp.model_version = 7;
  resp.model_crc = 0xabcd1234;
  resp.wall_seconds = 0.25;
  for (std::uint32_t s : {0u, 3u}) {
    SlotEstimateWire se;
    se.slot = s;
    se.estimate.counts[1] = 4.0 + s;
    se.estimate.pct[1][50] = 1.5 + s;
    se.estimate.pct[3][99] = 9.0;
    resp.estimates.push_back(se);
  }
  return resp;
}

TEST(ShardWire, ShardQueryResponseRoundTrip) {
  const ShardQueryResponse resp = SampleShardResponse();
  const StatusOr<ShardQueryResponse> got =
      DecodeShardQueryResponse(EncodeShardQueryResponse(resp));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->status.code(), StatusCode::kDegraded);
  EXPECT_EQ(got->degradation.paths_ok, 2);
  EXPECT_EQ(got->degradation.paths_degraded, 1);
  EXPECT_EQ(got->degradation.first_error, resp.degradation.first_error);
  EXPECT_EQ(got->model_version, 7u);
  EXPECT_EQ(got->model_crc, 0xabcd1234u);
  ASSERT_EQ(got->estimates.size(), 2u);
  EXPECT_EQ(got->estimates[1].slot, 3u);
  EXPECT_EQ(got->estimates[1].estimate.counts[1], 7.0);
  EXPECT_EQ(got->estimates[1].estimate.pct[1][50], 4.5);
  EXPECT_EQ(got->estimates[1].estimate.pct[3][99], 9.0);
}

TEST(ShardWire, EveryTruncationOfShardMessagesIsRejected) {
  ShardQueryRequest req;
  req.query = SampleShardQuery();
  req.slots = {1, 2};
  const std::string reqp = EncodeShardQueryRequest(req);
  for (std::size_t len = 0; len < reqp.size(); ++len) {
    ASSERT_FALSE(DecodeShardQueryRequest(reqp.substr(0, len)).ok())
        << "request prefix of " << len << " bytes decoded";
  }
  EXPECT_TRUE(DecodeShardQueryRequest(reqp).ok());

  const std::string respp = EncodeShardQueryResponse(SampleShardResponse());
  for (std::size_t len = 0; len < respp.size(); ++len) {
    ASSERT_FALSE(DecodeShardQueryResponse(respp.substr(0, len)).ok())
        << "response prefix of " << len << " bytes decoded";
  }
  EXPECT_TRUE(DecodeShardQueryResponse(respp).ok());
}

TEST(ShardWire, TrailingBytesAndBadVersionAreRejected) {
  ShardQueryRequest req;
  req.query = SampleShardQuery();
  const std::string payload = EncodeShardQueryRequest(req);
  EXPECT_EQ(DecodeShardQueryRequest(payload + "x").status().code(),
            StatusCode::kInvalidArgument);
  std::string wrong = payload;
  wrong[0] = static_cast<char>(kWireVersion + 1);
  EXPECT_EQ(DecodeShardQueryRequest(wrong).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardWire, HostileSlotCountIsRejectedWithoutAllocating) {
  // The slot-count u64 is the last length field before the trailing slot
  // words: locate it by encoding the same message with zero slots.
  ShardQueryRequest none;
  none.query = SampleShardQuery();
  ShardQueryRequest some = none;
  some.slots = {1, 2, 3};
  std::string payload = EncodeShardQueryRequest(some);
  const std::size_t count_off = EncodeShardQueryRequest(none).size() - 8;
  const std::uint64_t hostile = std::uint64_t{1} << 60;
  std::memcpy(&payload[count_off], &hostile, 8);
  const StatusOr<ShardQueryRequest> got = DecodeShardQueryRequest(payload);
  EXPECT_EQ(got.status().code(), StatusCode::kDataLoss) << got.status().ToString();
}

TEST(ShardWire, HostileEstimateCountIsRejectedWithoutAllocating) {
  ShardQueryResponse none = SampleShardResponse();
  none.estimates.clear();
  std::string payload = EncodeShardQueryResponse(SampleShardResponse());
  const std::size_t count_off = EncodeShardQueryResponse(none).size() - 8;
  const std::uint64_t hostile = std::uint64_t{1} << 60;
  std::memcpy(&payload[count_off], &hostile, 8);
  const StatusOr<ShardQueryResponse> got = DecodeShardQueryResponse(payload);
  EXPECT_EQ(got.status().code(), StatusCode::kDataLoss) << got.status().ToString();
}

TEST(ShardWire, QueryResponseShardAttributionRoundTrips) {
  QueryResponse resp;
  resp.status = Status::Ok();
  ShardReportWire row;
  row.shard = "unix:/tmp/s1.sock";
  row.slots_assigned = 10;
  row.slots_ok = 8;
  row.slots_fallback = 1;
  row.slots_dropped = 1;
  row.retries = 2;
  row.hedges = 1;
  row.breaker_open = true;
  resp.shards.push_back(row);
  const StatusOr<QueryResponse> got = DecodeQueryResponse(EncodeQueryResponse(resp));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->shards.size(), 1u);
  EXPECT_EQ(got->shards[0].shard, row.shard);
  EXPECT_EQ(got->shards[0].slots_assigned, 10u);
  EXPECT_EQ(got->shards[0].slots_ok, 8u);
  EXPECT_EQ(got->shards[0].slots_fallback, 1u);
  EXPECT_EQ(got->shards[0].slots_dropped, 1u);
  EXPECT_EQ(got->shards[0].retries, 2u);
  EXPECT_EQ(got->shards[0].hedges, 1u);
  EXPECT_TRUE(got->shards[0].breaker_open);
}

TEST(ShardWire, RouterStatsAndPingFieldsRoundTrip) {
  ServerStatsWire s;
  s.router_mode = true;
  ShardHealthWire sh;
  sh.address = "tcp:10.0.0.2:9000";
  sh.healthy = true;
  sh.breaker_open = false;
  sh.model_version = 3;
  sh.dispatches = 100;
  sh.failures = 4;
  sh.retries = 3;
  sh.hedges = 2;
  sh.slots_fallback = 7;
  sh.slots_dropped = 1;
  s.shards.push_back(sh);
  const StatusOr<ServerStatsWire> gs = DecodeStats(EncodeStats(s));
  ASSERT_TRUE(gs.ok()) << gs.status().ToString();
  ASSERT_TRUE(gs->router_mode);
  ASSERT_EQ(gs->shards.size(), 1u);
  EXPECT_EQ(gs->shards[0].address, sh.address);
  EXPECT_TRUE(gs->shards[0].healthy);
  EXPECT_EQ(gs->shards[0].model_version, 3u);
  EXPECT_EQ(gs->shards[0].dispatches, 100u);
  EXPECT_EQ(gs->shards[0].failures, 4u);
  EXPECT_EQ(gs->shards[0].retries, 3u);
  EXPECT_EQ(gs->shards[0].hedges, 2u);
  EXPECT_EQ(gs->shards[0].slots_fallback, 7u);
  EXPECT_EQ(gs->shards[0].slots_dropped, 1u);

  PingResponse p;
  p.ready = true;
  p.router_mode = true;
  p.shards_healthy = 2;
  p.shards_total = 3;
  p.model_version = 5;
  const StatusOr<PingResponse> gp = DecodePingResponse(EncodePingResponse(p));
  ASSERT_TRUE(gp.ok());
  EXPECT_TRUE(gp->ready);
  EXPECT_TRUE(gp->router_mode);
  EXPECT_EQ(gp->shards_healthy, 2u);
  EXPECT_EQ(gp->shards_total, 3u);
  EXPECT_EQ(gp->model_version, 5u);
}

// ----------------------------------------------------------------- fixture --

M3ModelConfig TinyModel() {
  M3ModelConfig mcfg;
  mcfg.d_model = 32;
  mcfg.num_layers = 1;
  mcfg.ff_dim = 64;
  mcfg.mlp_hidden = 64;
  return mcfg;
}

std::string TinyCheckpoint() {
  static const std::string path = [] {
    // Per-process path: ctest runs each test in its own process, and a
    // shared name races the save's tmp+rename under a parallel run.
    const std::string p = ::testing::TempDir() + "/router_tiny_model." +
                          std::to_string(static_cast<long>(::getpid())) + ".ckpt";
    M3Model model(TinyModel());
    model.Save(p);
    return p;
  }();
  return path;
}

QueryRequest FleetQuery(int num_paths = 6, std::uint64_t wl_seed = 3) {
  const FatTree ft(FatTreeConfig::Small(2.0));
  const auto tm = TrafficMatrix::MatrixB(ft.num_racks(), ft.config().racks_per_pod);
  const auto sizes = MakeWebServer();
  WorkloadSpec wspec;
  wspec.num_flows = 300;
  wspec.seed = wl_seed;
  const std::vector<Flow> flows = GenerateWorkload(ft, tm, *sizes, wspec).flows;
  QueryRequest req;
  req.oversub = 2.0;
  req.num_paths = num_paths;
  req.flows.reserve(flows.size());
  for (const Flow& f : flows) {
    WireFlow wf;
    wf.id = f.id;
    wf.src_host = ft.HostIndexOf(f.src);
    wf.dst_host = ft.HostIndexOf(f.dst);
    wf.size = f.size;
    wf.arrival = f.arrival;
    wf.priority = f.priority;
    req.flows.push_back(wf);
  }
  return req;
}

void ExpectBitwiseEqual(const QueryResponse& a, const QueryResponse& b) {
  EXPECT_EQ(a.bucket_pct, b.bucket_pct);
  EXPECT_EQ(a.total_counts, b.total_counts);
  EXPECT_EQ(a.combined_pct, b.combined_pct);
}

// -------------------------------------------------- shard-side execution --

TEST(ShardExec, SlotEstimatesAreIdenticalAcrossGroupings) {
  ModelRegistry reg(TinyModel());
  ASSERT_TRUE(reg.Reload(TinyCheckpoint()).ok());
  const std::shared_ptr<const ModelSnapshot> snap = reg.Current();
  ASSERT_NE(snap, nullptr);
  TopoMemo topos;
  ExecContext ctx;
  ctx.topos = &topos;

  ShardQueryRequest whole;
  whole.query = FleetQuery(6);
  whole.query.no_cache = true;
  for (std::uint32_t s = 0; s < 6; ++s) whole.slots.push_back(s);
  const ShardQueryResponse all = ExecuteShardOnSnapshot(whole, *snap, ctx);
  ASSERT_TRUE(all.status.ok()) << all.status.ToString();
  ASSERT_EQ(all.estimates.size(), 6u);

  // Scatter the same slots across three disjoint "shards": the union of
  // the partial replies must cover every slot with bitwise-identical
  // estimates — the property the router's positional merge relies on.
  std::map<std::uint32_t, PathEstimate> merged;
  for (int part = 0; part < 3; ++part) {
    ShardQueryRequest sub;
    sub.query = whole.query;
    for (std::uint32_t s = 0; s < 6; ++s) {
      if (static_cast<int>(s) % 3 == part) sub.slots.push_back(s);
    }
    const ShardQueryResponse got = ExecuteShardOnSnapshot(sub, *snap, ctx);
    ASSERT_TRUE(got.status.ok()) << got.status.ToString();
    ASSERT_EQ(got.estimates.size(), sub.slots.size());
    for (const SlotEstimateWire& se : got.estimates) {
      EXPECT_TRUE(merged.emplace(se.slot, se.estimate).second)
          << "slot " << se.slot << " estimated twice";
    }
  }
  ASSERT_EQ(merged.size(), 6u);
  for (const SlotEstimateWire& se : all.estimates) {
    const PathEstimate& m = merged.at(se.slot);
    EXPECT_EQ(se.estimate.pct, m.pct) << "slot " << se.slot;
    EXPECT_EQ(se.estimate.counts, m.counts) << "slot " << se.slot;
  }
}

TEST(ShardExec, OutOfRangeSlotsAreRejected) {
  ModelRegistry reg(TinyModel());
  ASSERT_TRUE(reg.Reload(TinyCheckpoint()).ok());
  TopoMemo topos;
  ExecContext ctx;
  ctx.topos = &topos;
  ShardQueryRequest req;
  req.query = FleetQuery(4);
  req.slots = {0, 99};  // 99 >= num_paths
  const ShardQueryResponse resp = ExecuteShardOnSnapshot(req, *reg.Current(), ctx);
  EXPECT_EQ(resp.status.code(), StatusCode::kInvalidArgument)
      << resp.status.ToString();
}

// --------------------------------------------------- live fleet (chaos) ----

struct TestShard {
  std::unique_ptr<EstimationService> service;
  std::unique_ptr<SocketServer> server;
  std::string path;

  void Start(const std::string& socket_path) {
    path = socket_path;
    ServiceOptions so;
    so.model_config = TinyModel();
    so.num_workers = 2;
    so.threads_per_query = 1;
    service = std::make_unique<EstimationService>(so);
    ASSERT_TRUE(service->ReloadModel(TinyCheckpoint()).ok());
    ASSERT_TRUE(service->Start().ok());
    server = std::make_unique<SocketServer>(*service);
    ASSERT_TRUE(server->Start(socket_path).ok());
  }

  void Kill() {  // connection-refused from the router's point of view
    if (server) server->Stop();
  }

  ~TestShard() {
    if (server) server->Stop();
    if (service) service->Stop();
  }
};

RouterOptions FastRouterOptions(const std::vector<std::string>& shards) {
  RouterOptions ro;
  ro.shards = shards;
  ro.replicas = 2;
  ro.connect_timeout_seconds = 1.0;
  ro.shard_timeout_seconds = 20.0;
  ro.retry_backoff_ms = 5.0;
  ro.health_interval_seconds = 0.1;
  ro.breaker.threshold = 3;
  ro.breaker.cooloff_seconds = 0.2;
  ro.fallback_threads = 2;
  return ro;
}

std::vector<std::string> FleetPaths(const char* tag, int n) {
  std::vector<std::string> paths;
  for (int i = 0; i < n; ++i) {
    paths.push_back(::testing::TempDir() + "/" + tag + std::to_string(i) + ".sock");
  }
  return paths;
}

TEST(RouterChaos, FaultFreeScatterIsBitwiseIdenticalToSingleDaemon) {
  const std::vector<std::string> paths = FleetPaths("rc_id", 3);
  TestShard shards[3];
  for (int i = 0; i < 3; ++i) shards[i].Start(paths[i]);

  Router router(FastRouterOptions(paths));
  ASSERT_TRUE(router.Start().ok());

  const QueryRequest req = FleetQuery(6);
  const QueryResponse routed = router.Query(req);
  ASSERT_TRUE(routed.status.ok()) << routed.status.ToString();

  // Reference: the same query on one standalone service.
  ServiceOptions so;
  so.model_config = TinyModel();
  EstimationService single(so);
  ASSERT_TRUE(single.ReloadModel(TinyCheckpoint()).ok());
  const QueryResponse direct = single.ExecuteInline(req);
  ASSERT_TRUE(direct.status.ok()) << direct.status.ToString();

  ExpectBitwiseEqual(routed, direct);
  EXPECT_EQ(routed.degradation.paths_ok, 6);
  EXPECT_EQ(routed.degradation.paths_degraded, 0);
  EXPECT_EQ(routed.degradation.paths_dropped, 0);

  // Attribution covers every slot exactly once across the fleet.
  ASSERT_EQ(routed.shards.size(), 3u);
  std::uint32_t assigned = 0, ok = 0;
  for (const ShardReportWire& row : routed.shards) {
    assigned += row.slots_assigned;
    ok += row.slots_ok;
    EXPECT_EQ(row.slots_fallback, 0u);
    EXPECT_EQ(row.slots_dropped, 0u);
  }
  EXPECT_EQ(assigned, 6u);
  EXPECT_EQ(ok, 6u);
}

TEST(RouterChaos, ShardLossReroutesToReplicasWithoutDegradation) {
  const std::vector<std::string> paths = FleetPaths("rc_loss", 3);
  TestShard shards[3];
  for (int i = 0; i < 3; ++i) shards[i].Start(paths[i]);

  Router router(FastRouterOptions(paths));
  ASSERT_TRUE(router.Start().ok());
  const QueryRequest req = FleetQuery(6);
  const QueryResponse before = router.Query(req);
  ASSERT_TRUE(before.status.ok()) << before.status.ToString();

  shards[1].Kill();
  // Immediately after the kill (prober may not have noticed): the dispatch
  // fails, the slots reroute to their next ring replica, and the answer is
  // still full-quality — identical to the pre-kill answer.
  const QueryResponse after = router.Query(req);
  ASSERT_TRUE(after.status.ok()) << after.status.ToString();
  ExpectBitwiseEqual(before, after);
  EXPECT_EQ(after.degradation.paths_degraded, 0);
  EXPECT_EQ(after.degradation.paths_dropped, 0);
  std::uint32_t ok = 0;
  for (const ShardReportWire& row : after.shards) ok += row.slots_ok;
  EXPECT_EQ(ok, 6u);
}

TEST(RouterChaos, WholeFleetDownDegradesEveryPathNeverFails) {
  const std::vector<std::string> paths = FleetPaths("rc_down", 3);
  {
    TestShard shards[3];
    for (int i = 0; i < 3; ++i) shards[i].Start(paths[i]);
    // Shards die before the router ever probes them.
  }

  Router router(FastRouterOptions(paths));
  ASSERT_TRUE(router.Start().ok());  // a dead fleet is not a startup error
  const PingResponse ping = router.Ping();
  EXPECT_TRUE(ping.router_mode);
  EXPECT_EQ(ping.shards_healthy, 0u);
  EXPECT_EQ(ping.shards_total, 3u);

  const QueryRequest req = FleetQuery(5);
  const QueryResponse resp = router.Query(req);
  // Degraded, never failed: every slot served by the router-side flowSim
  // fallback, attributed to its owning shard.
  EXPECT_EQ(resp.status.code(), StatusCode::kDegraded) << resp.status.ToString();
  EXPECT_EQ(resp.degradation.paths_degraded, 5);
  EXPECT_EQ(resp.degradation.paths_dropped, 0);
  EXPECT_FALSE(resp.combined_pct.empty());
  std::uint32_t fallback = 0;
  for (const ShardReportWire& row : resp.shards) fallback += row.slots_fallback;
  EXPECT_EQ(fallback, 5u);

  // Strict mode refuses fallbacks: slots drop and the answer reweights.
  QueryRequest strict = req;
  strict.strict = true;
  const QueryResponse sresp = router.Query(strict);
  EXPECT_EQ(sresp.degradation.paths_degraded, 0);
  EXPECT_EQ(sresp.degradation.paths_dropped, 5);
}

TEST(RouterChaos, FleetRecoveryReclosesBreakersAndRestoresFullQuality) {
  const std::vector<std::string> paths = FleetPaths("rc_rec", 3);
  TestShard shards[3];
  for (int i = 0; i < 3; ++i) shards[i].Start(paths[i]);

  Router router(FastRouterOptions(paths));
  ASSERT_TRUE(router.Start().ok());
  const QueryRequest req = FleetQuery(6);
  const QueryResponse before = router.Query(req);
  ASSERT_TRUE(before.status.ok());

  // Take the whole fleet down and let the prober open every breaker.
  for (TestShard& s : shards) s.Kill();
  const auto opened = [&router] {
    const ServerStatsWire s = router.Stats();
    std::size_t n = 0;
    for (const ShardHealthWire& sh : s.shards) n += sh.healthy ? 0 : 1;
    return n == s.shards.size();
  };
  for (int i = 0; i < 100 && !opened(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(opened());
  EXPECT_EQ(router.Query(req).status.code(), StatusCode::kDegraded);

  // Bring the fleet back on the same addresses: the health prober's
  // successful pings re-close the breakers (recoverable, unlike the
  // supervisor's digest quarantine) and answers return to full quality.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(shards[i].server->Start(paths[i]).ok());
  }
  const auto healthy = [&router] { return router.Ping().shards_healthy == 3u; };
  for (int i = 0; i < 200 && !healthy(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(healthy());

  const QueryResponse after = router.Query(req);
  ASSERT_TRUE(after.status.ok()) << after.status.ToString();
  ExpectBitwiseEqual(before, after);
  const ServerStatsWire stats = router.Stats();
  for (const ShardHealthWire& sh : stats.shards) {
    EXPECT_TRUE(sh.healthy) << sh.address;
    EXPECT_FALSE(sh.breaker_open) << sh.address;
  }
}

TEST(RouterChaos, RouterStartRequiresShards) {
  Router router(RouterOptions{});
  EXPECT_EQ(router.Start().code(), StatusCode::kInvalidArgument);
}

TEST(RouterChaos, RouterCacheServesRepeatsAndSurvivesRestart) {
  const std::vector<std::string> paths = FleetPaths("rc_warm", 2);
  TestShard shards[2];
  for (int i = 0; i < 2; ++i) shards[i].Start(paths[i]);

  const std::string cache_dir = ::testing::TempDir() + "/rc_warm_cache";
  std::filesystem::remove_all(cache_dir);
  RouterOptions ro = FastRouterOptions(paths);
  ro.cache_dir = cache_dir;
  ro.cache_flush_interval_seconds = 60.0;  // the test flushes explicitly

  const QueryRequest req = FleetQuery(5);
  QueryResponse first;
  {
    Router router(ro);
    ASSERT_TRUE(router.Start().ok());
    router.WaitForPersistRecovery();
    first = router.Query(req);
    ASSERT_TRUE(first.status.ok()) << first.status.ToString();
    EXPECT_EQ(first.degradation.paths_cached, 0);

    // Identical repeat: every slot answered from the router cache, no
    // scatter, bitwise identical to the scattered answer.
    const QueryResponse repeat = router.Query(req);
    ASSERT_TRUE(repeat.status.ok());
    ExpectBitwiseEqual(first, repeat);
    EXPECT_EQ(repeat.degradation.paths_cached, 5);
    EXPECT_EQ(repeat.degradation.paths_ok, 0);
    // A fully-cached answer must still carry the fleet's model identity,
    // not a zero version/crc from the skipped scatter.
    EXPECT_NE(first.model_crc, 0u);
    EXPECT_EQ(repeat.model_version, first.model_version);
    EXPECT_EQ(repeat.model_crc, first.model_crc);

    ASSERT_TRUE(router.FlushPersistNow().ok());
    EXPECT_GE(router.Stats().persist_entries_flushed, 5u);
    router.Stop();
  }

  // Router restart, same directory, same fleet: the warm set comes back
  // (validated against the fleet's model CRC) and the first query after
  // boot is already fully cache-served.
  {
    Router router(ro);
    ASSERT_TRUE(router.Start().ok());
    router.WaitForPersistRecovery();
    const ServerStatsWire st = router.Stats();
    EXPECT_TRUE(st.persist_enabled);
    EXPECT_GE(st.persist_entries_loaded, 5u);
    EXPECT_EQ(st.persist_records_corrupt, 0u);

    const QueryResponse warm = router.Query(req);
    ASSERT_TRUE(warm.status.ok());
    ExpectBitwiseEqual(first, warm);
    EXPECT_EQ(warm.degradation.paths_cached, 5);
    EXPECT_EQ(warm.model_version, first.model_version);
    EXPECT_EQ(warm.model_crc, first.model_crc);
    router.Stop();
  }
}

TEST(RouterChaos, NoCacheRequestBypassesRouterCache) {
  const std::vector<std::string> paths = FleetPaths("rc_nocache", 2);
  TestShard shards[2];
  for (int i = 0; i < 2; ++i) shards[i].Start(paths[i]);

  Router router(FastRouterOptions(paths));
  ASSERT_TRUE(router.Start().ok());
  QueryRequest req = FleetQuery(4);
  ASSERT_TRUE(router.Query(req).status.ok());
  req.no_cache = true;
  const QueryResponse again = router.Query(req);
  ASSERT_TRUE(again.status.ok());
  EXPECT_EQ(again.degradation.paths_cached, 0);
}

}  // namespace
}  // namespace m3::serve
