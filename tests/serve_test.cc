// Serving-subsystem tests: content hashing, the wire codecs, cache-key
// sensitivity, the bounded LRU, the model registry's hot-reload semantics,
// the EstimationService (admission control, cache hits bitwise-identical to
// recompute, per-path reuse, fault-injected cache outages), and the socket
// server end-to-end.
//
// The hot-reload and concurrent-query tests are the designated TSan
// workload (tools/check.sh runs this binary under -fsanitize=thread).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <thread>
#include <vector>

#include "pathdecomp/decompose.h"
#include "pathdecomp/path_topology.h"
#include "serve/cache.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve/wire.h"
#include "topo/fat_tree.h"
#include "util/fault.h"
#include "util/hash.h"
#include "util/socket.h"
#include "workload/generator.h"
#include "workload/size_dist.h"

namespace m3::serve {
namespace {

class FaultGuard {
 public:
  FaultGuard() { FaultRegistry::Instance().Reset(); }
  ~FaultGuard() { FaultRegistry::Instance().Reset(); }
};

// ------------------------------------------------------------------- hash --

TEST(Hash, StreamingMatchesOneShotAcrossChunkings) {
  std::string data;
  for (int i = 0; i < 1000; ++i) data.push_back(static_cast<char>(i * 37 + 11));
  const Hash128 whole = HashBytes(data.data(), data.size());
  for (std::size_t chunk : {1u, 3u, 16u, 17u, 64u, 999u}) {
    Hasher h;
    for (std::size_t off = 0; off < data.size(); off += chunk) {
      h.Bytes(data.data() + off, std::min(chunk, data.size() - off));
    }
    EXPECT_EQ(h.Finish(), whole) << "chunk=" << chunk;
  }
}

TEST(Hash, StableAcrossRunsAndSensitiveToInput) {
  // Fixed seeds make the hash a stable content address across processes;
  // pin one known answer so an accidental seed change cannot slip by.
  Hasher h;
  h.Str("m3d");
  h.U64(42);
  const Hash128 a = h.Finish();
  Hasher h2;
  h2.Str("m3d");
  h2.U64(42);
  EXPECT_EQ(a, h2.Finish());
  Hasher h3;
  h3.Str("m3d");
  h3.U64(43);
  EXPECT_NE(a, h3.Finish());
  EXPECT_EQ(a.ToHex().size(), 32u);
}

TEST(Hash, FieldBoundariesMatter) {
  // Length-prefixed strings: ("ab", "c") must not collide with ("a", "bc").
  Hasher h1, h2;
  h1.Str("ab");
  h1.Str("c");
  h2.Str("a");
  h2.Str("bc");
  EXPECT_NE(h1.Finish(), h2.Finish());
}

TEST(Hash, DoublesHashByBitPattern) {
  Hasher h1, h2;
  h1.F64(0.0);
  h2.F64(-0.0);
  EXPECT_NE(h1.Finish(), h2.Finish());  // distinct bit patterns
}

// ------------------------------------------------------------ wire codecs --

QueryRequest SampleRequest() {
  QueryRequest req;
  req.oversub = 4.0;
  req.cfg.cc = CcType::kDcqcn;
  req.cfg.init_window = 20 * kKB;
  req.cfg.pfc = true;
  req.num_paths = 7;
  req.seed = 99;
  req.use_context = false;
  req.strict = true;
  req.deadline_seconds = 1.5;
  req.max_attempts = 3;
  req.no_cache = true;
  for (int i = 0; i < 3; ++i) {
    WireFlow f;
    f.id = i;
    f.src_host = i;
    f.dst_host = 10 + i;
    f.size = 1000 * (i + 1);
    f.arrival = 500 * i;
    f.priority = static_cast<std::uint8_t>(i % 3);
    req.flows.push_back(f);
  }
  return req;
}

TEST(Wire, QueryRequestRoundTrip) {
  const QueryRequest req = SampleRequest();
  const StatusOr<QueryRequest> got = DecodeQueryRequest(EncodeQueryRequest(req));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->oversub, req.oversub);
  EXPECT_EQ(got->cfg.cc, req.cfg.cc);
  EXPECT_EQ(got->cfg.init_window, req.cfg.init_window);
  EXPECT_EQ(got->cfg.pfc, req.cfg.pfc);
  EXPECT_EQ(got->num_paths, req.num_paths);
  EXPECT_EQ(got->seed, req.seed);
  EXPECT_EQ(got->use_context, req.use_context);
  EXPECT_EQ(got->strict, req.strict);
  EXPECT_EQ(got->deadline_seconds, req.deadline_seconds);
  EXPECT_EQ(got->max_attempts, req.max_attempts);
  EXPECT_EQ(got->no_cache, req.no_cache);
  ASSERT_EQ(got->flows.size(), req.flows.size());
  for (std::size_t i = 0; i < req.flows.size(); ++i) {
    EXPECT_EQ(got->flows[i].id, req.flows[i].id);
    EXPECT_EQ(got->flows[i].src_host, req.flows[i].src_host);
    EXPECT_EQ(got->flows[i].dst_host, req.flows[i].dst_host);
    EXPECT_EQ(got->flows[i].size, req.flows[i].size);
    EXPECT_EQ(got->flows[i].arrival, req.flows[i].arrival);
    EXPECT_EQ(got->flows[i].priority, req.flows[i].priority);
  }
  // The cache key survives the wire: a daemon rebuilds the client's key.
  const Hash128 digest = HashBytes("model", 5);
  EXPECT_EQ(QueryCacheKey(req, digest), QueryCacheKey(*got, digest));
}

TEST(Wire, QueryResponseRoundTrip) {
  QueryResponse resp;
  resp.status = Status::Degraded("1 of 4 paths degraded");
  resp.bucket_pct[0] = {1.0, 2.5, 3.25};
  resp.bucket_pct[3] = {7.5};
  resp.total_counts[0] = 12;
  resp.total_counts[3] = 4;
  resp.combined_pct = {1.0, 1.5, 9.75};
  resp.wall_seconds = 0.125;
  resp.degradation.paths_ok = 3;
  resp.degradation.paths_degraded = 1;
  resp.degradation.paths_cached = 2;
  resp.degradation.first_error = "path 0: injected";
  resp.model_version = 5;
  resp.model_crc = 0xdeadbeef;
  resp.query_cache_hit = true;
  resp.stats.queries_received = 10;
  resp.stats.query_cache[0] = 3;
  resp.stats.model_path = "models/x.ckpt";

  const StatusOr<QueryResponse> got = DecodeQueryResponse(EncodeQueryResponse(resp));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->status.code(), StatusCode::kDegraded);
  EXPECT_EQ(got->status.message(), resp.status.message());
  EXPECT_EQ(got->bucket_pct, resp.bucket_pct);
  EXPECT_EQ(got->total_counts, resp.total_counts);
  EXPECT_EQ(got->combined_pct, resp.combined_pct);
  EXPECT_EQ(got->wall_seconds, resp.wall_seconds);
  EXPECT_EQ(got->degradation.paths_ok, 3);
  EXPECT_EQ(got->degradation.paths_degraded, 1);
  EXPECT_EQ(got->degradation.paths_cached, 2);
  EXPECT_EQ(got->degradation.first_error, resp.degradation.first_error);
  EXPECT_EQ(got->model_version, 5u);
  EXPECT_EQ(got->model_crc, 0xdeadbeefu);
  EXPECT_TRUE(got->query_cache_hit);
  EXPECT_EQ(got->stats.queries_received, 10u);
  EXPECT_EQ(got->stats.query_cache[0], 3u);
  EXPECT_EQ(got->stats.model_path, "models/x.ckpt");
}

TEST(Wire, StatsAndReloadRoundTrip) {
  ServerStatsWire s;
  s.queries_received = 100;
  s.queries_rejected = 3;
  s.path_cache[3] = 17;
  s.queue_depth = 2;
  s.queue_capacity = 64;
  s.workers = 4;
  s.model_version = 9;
  s.reloads_failed = 1;
  s.model_path = "m.ckpt";
  const StatusOr<ServerStatsWire> got = DecodeStats(EncodeStats(s));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->queries_received, 100u);
  EXPECT_EQ(got->queries_rejected, 3u);
  EXPECT_EQ(got->path_cache[3], 17u);
  EXPECT_EQ(got->queue_depth, 2u);
  EXPECT_EQ(got->workers, 4u);
  EXPECT_EQ(got->model_version, 9u);
  EXPECT_EQ(got->reloads_failed, 1u);
  EXPECT_EQ(got->model_path, "m.ckpt");

  ReloadRequest rr;
  rr.checkpoint_path = "models/new.ckpt";
  const StatusOr<ReloadRequest> rq = DecodeReloadRequest(EncodeReloadRequest(rr));
  ASSERT_TRUE(rq.ok());
  EXPECT_EQ(rq->checkpoint_path, rr.checkpoint_path);

  ReloadResponse resp;
  resp.status = Status::DataLoss("crc mismatch");
  resp.model_version = 4;
  resp.model_crc = 0x1234;
  const StatusOr<ReloadResponse> rp = DecodeReloadResponse(EncodeReloadResponse(resp));
  ASSERT_TRUE(rp.ok());
  EXPECT_EQ(rp->status.code(), StatusCode::kDataLoss);
  EXPECT_EQ(rp->model_version, 4u);
  EXPECT_EQ(rp->model_crc, 0x1234u);
}

TEST(Wire, EveryTruncationIsRejectedWithoutCrashing) {
  const std::string payload = EncodeQueryRequest(SampleRequest());
  for (std::size_t len = 0; len < payload.size(); ++len) {
    const StatusOr<QueryRequest> got = DecodeQueryRequest(payload.substr(0, len));
    ASSERT_FALSE(got.ok()) << "prefix of " << len << " bytes decoded";
  }
  EXPECT_TRUE(DecodeQueryRequest(payload).ok());
}

TEST(Wire, TrailingBytesAndBadVersionAreRejected) {
  const std::string payload = EncodeQueryRequest(SampleRequest());
  EXPECT_EQ(DecodeQueryRequest(payload + "x").status().code(),
            StatusCode::kInvalidArgument);
  std::string wrong = payload;
  wrong[0] = static_cast<char>(kWireVersion + 1);  // little-endian u32 version
  EXPECT_EQ(DecodeQueryRequest(wrong).status().code(), StatusCode::kInvalidArgument);
}

TEST(Wire, WrappingFlowCountIsRejected) {
  // A hostile 64-bit flow count chosen so count * record-size wraps to a
  // tiny value must fail the bounds check; a multiplying check would pass
  // it and the subsequent resize would throw std::length_error through the
  // daemon's connection thread (std::terminate = one frame kills m3d).
  std::string payload = EncodeQueryRequest(SampleRequest());
  constexpr std::uint64_t kFlowBytes = 3 * 4 + 2 * 8 + 1;  // wire record size
  // Multiplicative inverse of the (odd) record size mod 2^64 via Newton
  // iteration: inv * kFlowBytes == 1, the smallest nonzero wrapped product.
  std::uint64_t inv = 1;
  for (int i = 0; i < 6; ++i) inv *= 2 - kFlowBytes * inv;
  ASSERT_EQ(inv * kFlowBytes, 1u);
  const std::size_t count_off = payload.size() - 3 * kFlowBytes - 8;
  std::memcpy(&payload[count_off], &inv, 8);
  const StatusOr<QueryRequest> got = DecodeQueryRequest(payload);
  EXPECT_EQ(got.status().code(), StatusCode::kDataLoss) << got.status().ToString();
}

// -------------------------------------------------------------- cache keys --

TEST(CacheKey, SensitiveToEveryQueryField) {
  const QueryRequest base = SampleRequest();
  const Hash128 digest = HashBytes("model-a", 7);
  const Hash128 k0 = QueryCacheKey(base, digest);
  EXPECT_EQ(k0, QueryCacheKey(base, digest));  // stable

  const auto differs = [&](auto mutate, const char* what) {
    QueryRequest r = base;
    mutate(r);
    EXPECT_NE(QueryCacheKey(r, digest), k0) << what;
  };
  differs([](QueryRequest& r) { r.oversub = 8.0; }, "oversub");
  differs([](QueryRequest& r) { r.num_paths += 1; }, "num_paths");
  differs([](QueryRequest& r) { r.seed += 1; }, "seed");
  differs([](QueryRequest& r) { r.use_context = !r.use_context; }, "use_context");
  differs([](QueryRequest& r) { r.flows.pop_back(); }, "flow count");
  differs([](QueryRequest& r) { r.flows[1].id += 1; }, "flow id");
  differs([](QueryRequest& r) { r.flows[1].src_host += 1; }, "flow src");
  differs([](QueryRequest& r) { r.flows[1].dst_host += 1; }, "flow dst");
  differs([](QueryRequest& r) { r.flows[1].size += 1; }, "flow size");
  differs([](QueryRequest& r) { r.flows[1].arrival += 1; }, "flow arrival");
  differs([](QueryRequest& r) { r.flows[1].priority ^= 1; }, "flow priority");
  differs([](QueryRequest& r) { r.cfg.cc = CcType::kHpcc; }, "cfg.cc");
  differs([](QueryRequest& r) { r.cfg.init_window += 1; }, "cfg.init_window");
  differs([](QueryRequest& r) { r.cfg.buffer += 1; }, "cfg.buffer");
  differs([](QueryRequest& r) { r.cfg.pfc = !r.cfg.pfc; }, "cfg.pfc");
  differs([](QueryRequest& r) { r.cfg.dctcp_k += 1; }, "cfg.dctcp_k");
  differs([](QueryRequest& r) { r.cfg.hpcc_eta += 0.01; }, "cfg.hpcc_eta");
  differs([](QueryRequest& r) { r.cfg.mtu += 1; }, "cfg.mtu");
  differs([](QueryRequest& r) { r.cfg.seed += 1; }, "cfg.seed");

  // A different model digest is a different address (hot-reload safety).
  EXPECT_NE(QueryCacheKey(base, HashBytes("model-b", 7)), k0);

  // Fault-handling knobs shape *how* the answer is computed, not what the
  // fault-free answer is; they are deliberately not part of the address.
  const auto same = [&](auto mutate, const char* what) {
    QueryRequest r = base;
    mutate(r);
    EXPECT_EQ(QueryCacheKey(r, digest), k0) << what;
  };
  same([](QueryRequest& r) { r.strict = !r.strict; }, "strict");
  same([](QueryRequest& r) { r.deadline_seconds += 1.0; }, "deadline");
  same([](QueryRequest& r) { r.max_attempts += 1; }, "max_attempts");
  same([](QueryRequest& r) { r.no_cache = !r.no_cache; }, "no_cache");
}

TEST(CacheKey, PathKeySensitiveToScenarioContentNotSampling) {
  const FatTree ft(FatTreeConfig::Small(2.0));
  const auto tm = TrafficMatrix::MatrixB(ft.num_racks(), ft.config().racks_per_pod);
  const auto sizes = MakeWebServer();
  WorkloadSpec wspec;
  wspec.num_flows = 200;
  wspec.seed = 3;
  std::vector<Flow> flows = GenerateWorkload(ft, tm, *sizes, wspec).flows;
  const PathDecomposition decomp(ft.topo(), flows);
  ASSERT_GE(decomp.num_paths(), 2u);

  const NetConfig cfg;
  const Hash128 digest = HashBytes("m", 1);
  PathScenario s0 = BuildPathScenario(ft.topo(), flows, decomp, 0);
  const Hash128 k0 = PathCacheKey(s0, cfg, true, digest);
  {
    // Rebuilding the same scenario yields the same address.
    PathScenario again = BuildPathScenario(ft.topo(), flows, decomp, 0);
    EXPECT_EQ(PathCacheKey(again, cfg, true, digest), k0);
  }
  {
    PathScenario other = BuildPathScenario(ft.topo(), flows, decomp, 1);
    EXPECT_NE(PathCacheKey(other, cfg, true, digest), k0);
  }
  {
    // One flow's size differing anywhere in the network must separate the
    // scenarios it appears in.
    std::vector<Flow> tweaked = flows;
    tweaked[0].size += 1;
    const PathDecomposition d2(ft.topo(), tweaked);
    PathScenario s2 = BuildPathScenario(ft.topo(), tweaked, d2, 0);
    const bool contains_flow0 = [&] {
      for (std::size_t i = 0; i < s0.orig_id.size(); ++i) {
        if (s0.orig_id[i] == flows[0].id) return true;
      }
      return false;
    }();
    if (contains_flow0) {
      EXPECT_NE(PathCacheKey(s2, cfg, true, digest), k0);
    }
  }
  {
    NetConfig cfg2;
    cfg2.buffer += 1;
    EXPECT_NE(PathCacheKey(s0, cfg2, true, digest), k0);
  }
  EXPECT_NE(PathCacheKey(s0, cfg, false, digest), k0);
  EXPECT_NE(PathCacheKey(s0, cfg, true, HashBytes("n", 1)), k0);
}

// --------------------------------------------------------------------- LRU --

Hash128 Key(const char* s) { return HashBytes(s, std::strlen(s)); }

TEST(LruCache, EvictsLeastRecentlyUsedAndCounts) {
  LruCache<int> cache(2);
  cache.Insert(Key("a"), 1);
  cache.Insert(Key("b"), 2);
  EXPECT_EQ(cache.Lookup(Key("a")), std::optional<int>(1));  // promotes "a"
  cache.Insert(Key("c"), 3);                                 // evicts "b"
  EXPECT_EQ(cache.Lookup(Key("b")), std::nullopt);
  EXPECT_EQ(cache.Lookup(Key("a")), std::optional<int>(1));
  EXPECT_EQ(cache.Lookup(Key("c")), std::optional<int>(3));

  const std::vector<Hash128> order = cache.KeysByRecency();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], Key("c"));
  EXPECT_EQ(order[1], Key("a"));

  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 3u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.inserts, 3u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
}

TEST(LruCache, DuplicateInsertRefreshesRecencyKeepsValue) {
  LruCache<int> cache(2);
  cache.Insert(Key("a"), 1);
  cache.Insert(Key("b"), 2);
  cache.Insert(Key("a"), 99);  // same address => same content by construction
  cache.Insert(Key("c"), 3);   // evicts "b", not "a"
  EXPECT_EQ(cache.Lookup(Key("a")), std::optional<int>(1));
  EXPECT_EQ(cache.Lookup(Key("b")), std::nullopt);
}

TEST(LruCache, ZeroCapacityDisables) {
  LruCache<int> cache(0);
  cache.Insert(Key("a"), 1);
  EXPECT_EQ(cache.Lookup(Key("a")), std::nullopt);
  EXPECT_EQ(cache.stats().inserts, 0u);
}

TEST(LruCache, LookupFaultSiteIsInjectable) {
  FaultGuard guard;
  LruCache<int> cache(4, "serve/cache_lookup");
  cache.Insert(Key("a"), 1);
  EXPECT_EQ(cache.Lookup(Key("a")), std::optional<int>(1));
  FaultRegistry::Instance().Arm("serve/cache_lookup");
  EXPECT_THROW(cache.Lookup(Key("a")), FaultInjected);
  FaultRegistry::Instance().Reset();
  EXPECT_EQ(cache.Lookup(Key("a")), std::optional<int>(1));
}

// ---------------------------------------------------------------- fixture --

M3ModelConfig SmallModel() {
  M3ModelConfig mcfg;
  mcfg.d_model = 32;
  mcfg.num_layers = 1;
  mcfg.ff_dim = 64;
  mcfg.mlp_hidden = 64;
  return mcfg;
}

std::string SmallCheckpoint() {
  static const std::string path = [] {
    const std::string p = ::testing::TempDir() + "/serve_small_model.ckpt";
    M3Model model(SmallModel());
    model.Save(p);
    return p;
  }();
  return path;
}

// A second valid checkpoint with different weights (hot-reload target).
std::string SmallCheckpointB() {
  static const std::string path = [] {
    const std::string p = ::testing::TempDir() + "/serve_small_model_b.ckpt";
    M3ModelConfig mcfg = SmallModel();
    mcfg.init_seed = 777;
    M3Model model(mcfg);
    model.Save(p);
    return p;
  }();
  return path;
}

std::string CorruptCheckpoint() {
  static const std::string path = [] {
    const std::string p = ::testing::TempDir() + "/serve_corrupt.ckpt";
    std::ofstream f(p, std::ios::binary);
    f << "this is not a checkpoint";
    return p;
  }();
  return path;
}

ServiceOptions SmallServiceOptions() {
  ServiceOptions so;
  so.model_config = SmallModel();
  so.num_workers = 2;
  so.threads_per_query = 1;
  return so;
}

QueryRequest SmallQuery(std::uint64_t wl_seed = 3) {
  const FatTree ft(FatTreeConfig::Small(2.0));
  const auto tm = TrafficMatrix::MatrixB(ft.num_racks(), ft.config().racks_per_pod);
  const auto sizes = MakeWebServer();
  WorkloadSpec wspec;
  wspec.num_flows = 300;
  wspec.seed = wl_seed;
  const std::vector<Flow> flows = GenerateWorkload(ft, tm, *sizes, wspec).flows;
  QueryRequest req;
  req.oversub = 2.0;
  req.num_paths = 3;
  req.flows.reserve(flows.size());
  for (const Flow& f : flows) {
    WireFlow wf;
    wf.id = f.id;
    wf.src_host = ft.HostIndexOf(f.src);
    wf.dst_host = ft.HostIndexOf(f.dst);
    wf.size = f.size;
    wf.arrival = f.arrival;
    wf.priority = f.priority;
    req.flows.push_back(wf);
  }
  return req;
}

// Bitwise comparison of the answer payload (not metadata like wall time).
void ExpectBitwiseEqual(const QueryResponse& a, const QueryResponse& b) {
  EXPECT_EQ(a.bucket_pct, b.bucket_pct);
  EXPECT_EQ(a.total_counts, b.total_counts);
  EXPECT_EQ(a.combined_pct, b.combined_pct);
}

// ---------------------------------------------------------------- registry --

TEST(ModelRegistry, ReloadPublishesAndFailureKeepsServing) {
  ModelRegistry reg(SmallModel());
  EXPECT_EQ(reg.Current(), nullptr);

  ASSERT_TRUE(reg.Reload(SmallCheckpoint()).ok());
  const auto v1 = reg.Current();
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->version, 1u);
  EXPECT_EQ(v1->checkpoint_path, SmallCheckpoint());

  // Distinct weights get a distinct digest and a bumped version.
  ASSERT_TRUE(reg.Reload(SmallCheckpointB()).ok());
  const auto v2 = reg.Current();
  EXPECT_EQ(v2->version, 2u);
  EXPECT_NE(v2->digest, v1->digest);
  EXPECT_NE(v2->param_crc, v1->param_crc);

  // Corrupt reload: error returned, v2 keeps serving, counters tell the story.
  const Status bad = reg.Reload(CorruptCheckpoint());
  EXPECT_EQ(bad.code(), StatusCode::kDataLoss) << bad.ToString();
  EXPECT_EQ(reg.Current(), v2);
  EXPECT_EQ(reg.reloads_ok(), 2u);
  EXPECT_EQ(reg.reloads_failed(), 1u);

  // Missing file: same degradation contract.
  EXPECT_EQ(reg.Reload("/nonexistent/m.ckpt").code(), StatusCode::kNotFound);
  EXPECT_EQ(reg.Current(), v2);
}

TEST(ModelRegistry, InjectedReloadFaultKeepsOldSnapshot) {
  FaultGuard guard;
  ModelRegistry reg(SmallModel());
  ASSERT_TRUE(reg.Reload(SmallCheckpoint()).ok());
  const auto before = reg.Current();

  FaultRegistry::Instance().Arm("serve/registry_reload");
  const Status st = reg.Reload(SmallCheckpointB());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st.ToString();
  EXPECT_EQ(reg.Current(), before);
  EXPECT_EQ(reg.reloads_failed(), 1u);

  FaultRegistry::Instance().Reset();
  EXPECT_TRUE(reg.Reload(SmallCheckpointB()).ok());
  EXPECT_EQ(reg.Current()->version, 2u);
}

TEST(ModelRegistry, ConcurrentReloadsPublishConsistently) {
  // Reloads are serialized: publication order equals call order, so racing
  // reloads can never leave older weights serving under a newer version.
  // Externally observable invariant: every load gets a unique version and
  // the final snapshot's (path, digest) pair is mutually consistent.
  ModelRegistry reg(SmallModel());
  ASSERT_TRUE(reg.Reload(SmallCheckpoint()).ok());
  const Hash128 digest_a = reg.Current()->digest;
  ASSERT_TRUE(reg.Reload(SmallCheckpointB()).ok());
  const Hash128 digest_b = reg.Current()->digest;

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 5; ++i) {
        const Status st =
            reg.Reload((t + i) % 2 == 0 ? SmallCheckpoint() : SmallCheckpointB());
        EXPECT_TRUE(st.ok()) << st.ToString();
      }
    });
  }
  for (std::thread& th : threads) th.join();

  const auto snap = reg.Current();
  EXPECT_EQ(snap->version, 22u);  // 2 setup + 20 concurrent, none lost
  EXPECT_EQ(reg.reloads_ok(), 22u);
  const bool is_a = snap->digest == digest_a;
  EXPECT_TRUE(is_a || snap->digest == digest_b);
  EXPECT_EQ(snap->checkpoint_path, is_a ? SmallCheckpoint() : SmallCheckpointB());
}

// ----------------------------------------------------------------- service --

TEST(Service, NoModelLoadedIsUnavailable) {
  EstimationService service(SmallServiceOptions());
  const QueryResponse resp = service.ExecuteInline(SmallQuery());
  EXPECT_EQ(resp.status.code(), StatusCode::kUnavailable) << resp.status.ToString();
  EXPECT_EQ(resp.stats.queries_failed, 1u);
}

TEST(Service, ValidationRejectsHostileFlows) {
  EstimationService service(SmallServiceOptions());
  ASSERT_TRUE(service.ReloadModel(SmallCheckpoint()).ok());

  QueryRequest req = SmallQuery();
  req.flows[5].dst_host = 1 << 20;  // out of range for the 256-host tree
  QueryResponse resp = service.ExecuteInline(req);
  EXPECT_EQ(resp.status.code(), StatusCode::kInvalidArgument) << resp.status.ToString();
  EXPECT_NE(resp.status.message().find("flows[5]"), std::string::npos)
      << resp.status.ToString();

  req = SmallQuery();
  req.oversub = 1e9;
  resp = service.ExecuteInline(req);
  EXPECT_EQ(resp.status.code(), StatusCode::kInvalidArgument);
}

TEST(Service, CacheHitIsBitwiseIdenticalToRecompute) {
  EstimationService service(SmallServiceOptions());
  ASSERT_TRUE(service.ReloadModel(SmallCheckpoint()).ok());
  const QueryRequest req = SmallQuery();

  const QueryResponse first = service.ExecuteInline(req);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_FALSE(first.query_cache_hit);

  const QueryResponse hit = service.ExecuteInline(req);
  ASSERT_TRUE(hit.status.ok());
  EXPECT_TRUE(hit.query_cache_hit);
  ExpectBitwiseEqual(hit, first);

  // Ground truth: an uncached recompute of the same request.
  QueryRequest fresh = req;
  fresh.no_cache = true;
  const QueryResponse recompute = service.ExecuteInline(fresh);
  ASSERT_TRUE(recompute.status.ok());
  EXPECT_FALSE(recompute.query_cache_hit);
  ExpectBitwiseEqual(recompute, first);

  const ServerStatsWire s = service.Stats();
  EXPECT_EQ(s.query_cache[0], 1u);  // hits
  EXPECT_GE(s.query_cache[2], 1u);  // inserts
}

TEST(Service, CacheHitsMatchAcrossThreadCounts) {
  // The pipeline is bitwise deterministic across thread counts (PR 1), so
  // a cache populated by a 1-thread-per-query service must be bitwise
  // interchangeable with a 4-thread recompute.
  ServiceOptions so1 = SmallServiceOptions();
  so1.threads_per_query = 1;
  EstimationService s1(so1);
  ASSERT_TRUE(s1.ReloadModel(SmallCheckpoint()).ok());

  ServiceOptions so4 = SmallServiceOptions();
  so4.threads_per_query = 4;
  EstimationService s4(so4);
  ASSERT_TRUE(s4.ReloadModel(SmallCheckpoint()).ok());

  const QueryRequest req = SmallQuery();
  const QueryResponse r1 = s1.ExecuteInline(req);
  const QueryResponse r4 = s4.ExecuteInline(req);
  ASSERT_TRUE(r1.status.ok()) << r1.status.ToString();
  ASSERT_TRUE(r4.status.ok()) << r4.status.ToString();
  ExpectBitwiseEqual(r1, r4);
}

TEST(Service, PathCacheReusesAcrossQueryCacheMisses) {
  EstimationService service(SmallServiceOptions());
  ASSERT_TRUE(service.ReloadModel(SmallCheckpoint()).ok());
  const QueryRequest req = SmallQuery();

  const QueryResponse first = service.ExecuteInline(req);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_EQ(first.degradation.paths_cached, 0);

  // Clearing only the query cache forces a repeat query back through the
  // estimator, where every sampled path should now be a per-path hit.
  service.ClearQueryCache();
  const QueryResponse second = service.ExecuteInline(req);
  ASSERT_TRUE(second.status.ok()) << second.status.ToString();
  EXPECT_FALSE(second.query_cache_hit);
  EXPECT_EQ(second.degradation.paths_cached, req.num_paths);
  ExpectBitwiseEqual(second, first);

  const ServerStatsWire s = service.Stats();
  EXPECT_GE(s.path_cache[0], static_cast<std::uint64_t>(req.num_paths));
}

TEST(Service, CacheOutageDegradesToRecomputeNotFailure) {
  FaultGuard guard;
  EstimationService service(SmallServiceOptions());
  ASSERT_TRUE(service.ReloadModel(SmallCheckpoint()).ok());
  const QueryRequest req = SmallQuery();

  const QueryResponse warm = service.ExecuteInline(req);  // populates caches
  ASSERT_TRUE(warm.status.ok());

  // Every cache lookup now throws; both layers must swallow it.
  FaultRegistry::Instance().Arm("serve/cache_lookup");
  const QueryResponse resp = service.ExecuteInline(req);
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_FALSE(resp.query_cache_hit);
  EXPECT_EQ(resp.degradation.paths_cached, 0);
  EXPECT_EQ(resp.degradation.paths_degraded, 0);  // full quality, no reuse
  ExpectBitwiseEqual(resp, warm);
}

TEST(Service, TopologyMemoIsBounded) {
  // Oversub arrives as a client-supplied double: every in-range bit
  // pattern is admissible, so the topology memo must be a bounded LRU,
  // not grow-forever. A flow with src == dst fails validation *after* the
  // topology is materialized, which makes each probe cheap.
  EstimationService service(SmallServiceOptions());
  ASSERT_TRUE(service.ReloadModel(SmallCheckpoint()).ok());
  QueryRequest req;
  req.flows.push_back(WireFlow{});  // src_host == dst_host == 0
  for (int i = 0; i < 20; ++i) {
    req.oversub = 1.0 + 0.125 * i;
    const QueryResponse resp = service.ExecuteInline(req);
    EXPECT_EQ(resp.status.code(), StatusCode::kInvalidArgument) << resp.status.ToString();
  }
  const std::size_t bound = service.TopologyCacheSize();
  EXPECT_LE(bound, 8u);
  // A repeated ratio refreshes recency instead of inserting a duplicate.
  service.ExecuteInline(req);
  EXPECT_EQ(service.TopologyCacheSize(), bound);
}

TEST(Service, DeadlineIncludesQueueWait) {
  // A request's deadline starts at admission, not at worker pickup: time
  // spent queued behind other work must count against it, so a request
  // whose deadline expires in the queue answers kDeadlineExceeded instead
  // of computing long past the client's intent.
  ServiceOptions so = SmallServiceOptions();
  so.num_workers = 1;
  EstimationService service(so);
  ASSERT_TRUE(service.ReloadModel(SmallCheckpoint()).ok());
  ASSERT_TRUE(service.Start().ok());

  // Park the only worker inside its done-callback.
  std::promise<void> entered, release;
  ASSERT_TRUE(service
                  .Submit(SmallQuery(),
                          [&](QueryResponse) {
                            entered.set_value();
                            release.get_future().wait();
                          })
                  .ok());
  entered.get_future().wait();

  QueryRequest late = SmallQuery();
  late.no_cache = true;  // the deadline is excluded from the cache key
  late.deadline_seconds = 0.02;
  std::promise<QueryResponse> done;
  ASSERT_TRUE(
      service.Submit(late, [&](QueryResponse r) { done.set_value(std::move(r)); }).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));  // > deadline
  release.set_value();
  const QueryResponse resp = done.get_future().get();
  EXPECT_EQ(resp.status.code(), StatusCode::kDeadlineExceeded) << resp.status.ToString();
  service.Stop();
}

TEST(Service, AdmissionControlRejectsWhenQueueFull) {
  ServiceOptions so = SmallServiceOptions();
  so.num_workers = 1;
  so.queue_capacity = 1;
  EstimationService service(so);
  ASSERT_TRUE(service.ReloadModel(SmallCheckpoint()).ok());
  ASSERT_TRUE(service.Start().ok());

  const QueryRequest req = SmallQuery();
  // Occupy the only worker: its done-callback parks until we release it.
  std::promise<void> entered, release;
  ASSERT_TRUE(service
                  .Submit(req,
                          [&](QueryResponse) {
                            entered.set_value();
                            release.get_future().wait();
                          })
                  .ok());
  entered.get_future().wait();

  // Queue slot 1 of 1.
  std::promise<void> second_done;
  ASSERT_TRUE(
      service.Submit(req, [&](QueryResponse) { second_done.set_value(); }).ok());

  // Queue full: rejected, callback never invoked.
  const Status st = service.Submit(req, [](QueryResponse) { FAIL(); });
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
  EXPECT_NE(st.message().find("queue full"), std::string::npos) << st.ToString();

  release.set_value();
  second_done.get_future().wait();
  service.Stop();

  const ServerStatsWire s = service.Stats();
  EXPECT_EQ(s.queries_received, 3u);
  EXPECT_EQ(s.queries_rejected, 1u);
  EXPECT_EQ(s.queries_ok, 2u);
}

TEST(Service, StopDrainsAcceptedQueries) {
  ServiceOptions so = SmallServiceOptions();
  so.num_workers = 1;
  so.queue_capacity = 8;
  EstimationService service(so);
  ASSERT_TRUE(service.ReloadModel(SmallCheckpoint()).ok());
  ASSERT_TRUE(service.Start().ok());

  std::atomic<int> done{0};
  const QueryRequest req = SmallQuery();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(service
                    .Submit(req,
                            [&](QueryResponse r) {
                              EXPECT_TRUE(r.status.ok()) << r.status.ToString();
                              done.fetch_add(1);
                            })
                    .ok());
  }
  service.Stop();  // must answer all four before returning
  EXPECT_EQ(done.load(), 4);

  // After Stop, Submit rejects and Query falls back to inline execution.
  EXPECT_EQ(service.Submit(req, [](QueryResponse) {}).code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE(service.Query(req).status.ok());
}

TEST(Service, HotReloadUnderLoadNeverTearsAndNeverFailsQueries) {
  // The TSan centerpiece: queries race model reloads (including corrupt
  // ones). Every query must be answered from a consistent snapshot and
  // failed reloads must leave the last good model serving.
  EstimationService service(SmallServiceOptions());
  ASSERT_TRUE(service.ReloadModel(SmallCheckpoint()).ok());
  ASSERT_TRUE(service.Start().ok());

  QueryRequest req = SmallQuery();
  req.num_paths = 2;
  req.no_cache = true;  // force full compute so queries overlap reloads

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 2; ++t) {
    clients.emplace_back([&] {
      for (int q = 0; q < 5 && !stop.load(); ++q) {
        const QueryResponse resp = service.Query(req);
        if (!resp.status.ok()) {
          failures.fetch_add(1);
          ADD_FAILURE() << resp.status.ToString();
        }
        // The snapshot identity must be one of the published versions.
        if (resp.model_version == 0) failures.fetch_add(1);
      }
    });
  }
  const std::string reload_paths[3] = {SmallCheckpointB(), CorruptCheckpoint(),
                                       SmallCheckpoint()};
  for (int r = 0; r < 9; ++r) {
    const Status st = service.ReloadModel(reload_paths[r % 3]);
    if (r % 3 == 1) {
      EXPECT_FALSE(st.ok());  // corrupt reload must fail...
    } else {
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
    EXPECT_NE(service.registry().Current(), nullptr);  // ...but never unpublish
  }
  stop.store(true);
  for (std::thread& t : clients) t.join();
  service.Stop();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(service.Stats().reloads_failed, 3u);
}

// ------------------------------------------------------------ socket server --

TEST(SocketServer, EndToEndQueryStatsAndReload) {
  EstimationService service(SmallServiceOptions());
  ASSERT_TRUE(service.ReloadModel(SmallCheckpoint()).ok());
  ASSERT_TRUE(service.Start().ok());
  SocketServer server(service);
  const std::string sock = ::testing::TempDir() + "/serve_test.sock";
  ASSERT_TRUE(server.Start(sock).ok());

  StatusOr<UnixFd> fd = ConnectUnix(sock);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();

  // Query through the socket...
  const QueryRequest req = SmallQuery();
  ASSERT_TRUE(SendFrame(*fd, static_cast<std::uint32_t>(MsgType::kQueryRequest),
                        EncodeQueryRequest(req))
                  .ok());
  StatusOr<Frame> frame = RecvFrame(*fd);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_EQ(frame->type, static_cast<std::uint32_t>(MsgType::kQueryResponse));
  StatusOr<QueryResponse> resp = DecodeQueryResponse(frame->payload);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_TRUE(resp->status.ok()) << resp->status.ToString();

  // ...must be bitwise identical to an in-process uncached recompute.
  QueryRequest fresh = req;
  fresh.no_cache = true;
  ExpectBitwiseEqual(*resp, service.ExecuteInline(fresh));

  // Stats round-trip over the socket.
  ASSERT_TRUE(SendFrame(*fd, static_cast<std::uint32_t>(MsgType::kStatsRequest), "").ok());
  frame = RecvFrame(*fd);
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(frame->type, static_cast<std::uint32_t>(MsgType::kStatsResponse));
  StatusOr<ServerStatsWire> stats = DecodeStats(frame->payload);
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->queries_received, 2u);
  EXPECT_EQ(stats->model_version, 1u);

  // Corrupt hot-reload over the socket: error reported, version unchanged.
  ReloadRequest rr;
  rr.checkpoint_path = CorruptCheckpoint();
  ASSERT_TRUE(SendFrame(*fd, static_cast<std::uint32_t>(MsgType::kReloadRequest),
                        EncodeReloadRequest(rr))
                  .ok());
  frame = RecvFrame(*fd);
  ASSERT_TRUE(frame.ok());
  StatusOr<ReloadResponse> rresp = DecodeReloadResponse(frame->payload);
  ASSERT_TRUE(rresp.ok());
  EXPECT_EQ(rresp->status.code(), StatusCode::kDataLoss) << rresp->status.ToString();
  EXPECT_EQ(rresp->model_version, 1u);

  // Good hot-reload bumps the version.
  rr.checkpoint_path = SmallCheckpointB();
  ASSERT_TRUE(SendFrame(*fd, static_cast<std::uint32_t>(MsgType::kReloadRequest),
                        EncodeReloadRequest(rr))
                  .ok());
  frame = RecvFrame(*fd);
  ASSERT_TRUE(frame.ok());
  rresp = DecodeReloadResponse(frame->payload);
  ASSERT_TRUE(rresp.ok());
  EXPECT_TRUE(rresp->status.ok());
  EXPECT_EQ(rresp->model_version, 2u);

  server.Stop();
  service.Stop();
}

TEST(SocketServer, MalformedQueryGetsErrorResponseUnknownTypeHangsUp) {
  EstimationService service(SmallServiceOptions());
  ASSERT_TRUE(service.ReloadModel(SmallCheckpoint()).ok());
  SocketServer server(service);
  const std::string sock = ::testing::TempDir() + "/serve_test2.sock";
  ASSERT_TRUE(server.Start(sock).ok());

  {
    StatusOr<UnixFd> fd = ConnectUnix(sock);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(SendFrame(*fd, static_cast<std::uint32_t>(MsgType::kQueryRequest),
                          "garbage payload")
                    .ok());
    StatusOr<Frame> frame = RecvFrame(*fd);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    StatusOr<QueryResponse> resp = DecodeQueryResponse(frame->payload);
    ASSERT_TRUE(resp.ok());
    EXPECT_FALSE(resp->status.ok());
    EXPECT_NE(resp->status.message().find("decoding query request"), std::string::npos)
        << resp->status.ToString();
  }
  {
    StatusOr<UnixFd> fd = ConnectUnix(sock);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(SendFrame(*fd, 0xdeadu, "x").ok());
    const StatusOr<Frame> frame = RecvFrame(*fd);
    EXPECT_FALSE(frame.ok());  // server hung up
  }
  server.Stop();

  // The socket file is unlinked on Stop.
  EXPECT_EQ(ConnectUnix(sock).status().code(), StatusCode::kNotFound);
}

TEST(SocketServer, ServesUnixAndTcpListenersSimultaneously) {
  // m3d --listen-tcp: one server, two listeners, identical answers on both
  // transports (the framing layer is transport-agnostic by design).
  EstimationService service(SmallServiceOptions());
  ASSERT_TRUE(service.ReloadModel(SmallCheckpoint()).ok());
  SocketServer server(service);
  const std::string sock = ::testing::TempDir() + "/serve_test_dual.sock";
  ASSERT_TRUE(server.Start(sock).ok());
  Endpoint tcp;
  tcp.kind = Endpoint::Kind::kTcp;
  tcp.host = "127.0.0.1";
  tcp.port = 0;  // kernel-assigned would be ideal; probe a few fixed ports
  Status tcp_start = Status::Unavailable("no port tried");
  for (std::uint16_t port = 39451; port < 39481; ++port) {
    tcp.port = port;
    tcp_start = server.Start(tcp);
    if (tcp_start.ok()) break;
  }
  ASSERT_TRUE(tcp_start.ok()) << tcp_start.ToString();

  const auto ping_via = [](StatusOr<UnixFd> fd) {
    ASSERT_TRUE(fd.ok()) << fd.status().ToString();
    ASSERT_TRUE(SendFrame(*fd, static_cast<std::uint32_t>(MsgType::kPingRequest),
                          EncodePingRequest())
                    .ok());
    StatusOr<Frame> frame = RecvFrame(*fd);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    ASSERT_EQ(frame->type, static_cast<std::uint32_t>(MsgType::kPingResponse));
    const StatusOr<PingResponse> resp = DecodePingResponse(frame->payload);
    ASSERT_TRUE(resp.ok());
    EXPECT_TRUE(resp->ready);
    EXPECT_EQ(resp->model_version, 1u);
  };
  ping_via(ConnectUnix(sock));
  ping_via(ConnectTcpTimeout("127.0.0.1", tcp.port, 2.0));

  server.Stop();
  // Both listeners are down after one Stop.
  EXPECT_EQ(ConnectUnix(sock).status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(ConnectTcpTimeout("127.0.0.1", tcp.port, 0.5).ok());
}

TEST(SocketServer, EmptyHooksAnswerUnavailableNotCrash) {
  // A router exposes no reload and a plain shard no shard-query handler;
  // both must answer a clean typed kUnavailable instead of hanging up.
  SocketServer server(ServerHooks{});  // every hook empty
  const std::string sock = ::testing::TempDir() + "/serve_test_hookless.sock";
  ASSERT_TRUE(server.Start(sock).ok());
  StatusOr<UnixFd> fd = ConnectUnix(sock);
  ASSERT_TRUE(fd.ok());

  ReloadRequest rr;
  rr.checkpoint_path = "x.ckpt";
  ASSERT_TRUE(SendFrame(*fd, static_cast<std::uint32_t>(MsgType::kReloadRequest),
                        EncodeReloadRequest(rr))
                  .ok());
  StatusOr<Frame> frame = RecvFrame(*fd);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_EQ(frame->type, static_cast<std::uint32_t>(MsgType::kReloadResponse));
  const StatusOr<ReloadResponse> rresp = DecodeReloadResponse(frame->payload);
  ASSERT_TRUE(rresp.ok());
  EXPECT_EQ(rresp->status.code(), StatusCode::kUnavailable);

  ShardQueryRequest sq;
  sq.query = SmallQuery();
  ASSERT_TRUE(SendFrame(*fd, static_cast<std::uint32_t>(MsgType::kShardQueryRequest),
                        EncodeShardQueryRequest(sq))
                  .ok());
  frame = RecvFrame(*fd);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_EQ(frame->type, static_cast<std::uint32_t>(MsgType::kShardQueryResponse));
  const StatusOr<ShardQueryResponse> sresp = DecodeShardQueryResponse(frame->payload);
  ASSERT_TRUE(sresp.ok());
  EXPECT_EQ(sresp->status.code(), StatusCode::kUnavailable);
  server.Stop();
}

TEST(SocketServer, ShardQueryOverSocketMatchesInProcessExecution) {
  EstimationService service(SmallServiceOptions());
  ASSERT_TRUE(service.ReloadModel(SmallCheckpoint()).ok());
  SocketServer server(service);
  const std::string sock = ::testing::TempDir() + "/serve_test_shardq.sock";
  ASSERT_TRUE(server.Start(sock).ok());

  ShardQueryRequest sq;
  sq.query = SmallQuery();
  sq.query.no_cache = true;
  sq.slots = {0, 2};
  StatusOr<UnixFd> fd = ConnectUnix(sock);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(SendFrame(*fd, static_cast<std::uint32_t>(MsgType::kShardQueryRequest),
                        EncodeShardQueryRequest(sq))
                  .ok());
  StatusOr<Frame> frame = RecvFrame(*fd);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_EQ(frame->type, static_cast<std::uint32_t>(MsgType::kShardQueryResponse));
  const StatusOr<ShardQueryResponse> wire_resp = DecodeShardQueryResponse(frame->payload);
  ASSERT_TRUE(wire_resp.ok()) << wire_resp.status().ToString();
  ASSERT_TRUE(wire_resp->status.ok()) << wire_resp->status.ToString();

  const ShardQueryResponse direct = service.ExecuteShard(sq);
  ASSERT_TRUE(direct.status.ok());
  ASSERT_EQ(wire_resp->estimates.size(), direct.estimates.size());
  for (std::size_t i = 0; i < direct.estimates.size(); ++i) {
    EXPECT_EQ(wire_resp->estimates[i].slot, direct.estimates[i].slot);
    EXPECT_EQ(wire_resp->estimates[i].estimate.pct, direct.estimates[i].estimate.pct);
    EXPECT_EQ(wire_resp->estimates[i].estimate.counts,
              direct.estimates[i].estimate.counts);
  }
  server.Stop();
  service.Stop();
}

TEST(SocketServer, FinishedConnectionThreadsAreReaped) {
  // A long-running daemon serving short-lived connections must join exited
  // handler threads as it goes (a joinable thread keeps its stack until
  // join); without reaping this test would end with 16 threads accrued.
  EstimationService service(SmallServiceOptions());
  ASSERT_TRUE(service.ReloadModel(SmallCheckpoint()).ok());
  SocketServer server(service);
  const std::string sock = ::testing::TempDir() + "/serve_test3.sock";
  ASSERT_TRUE(server.Start(sock).ok());

  for (int i = 0; i < 16; ++i) {
    StatusOr<UnixFd> fd = ConnectUnix(sock);
    ASSERT_TRUE(fd.ok()) << fd.status().ToString();
    ASSERT_TRUE(
        SendFrame(*fd, static_cast<std::uint32_t>(MsgType::kStatsRequest), "").ok());
    ASSERT_TRUE(RecvFrame(*fd).ok());
  }  // each fd closes here; its handler exits on EOF

  // Reaping happens on the acceptor thread after each accept; the last
  // handlers' exits race this check, so poke-and-poll briefly.
  std::size_t live = server.connection_threads();
  for (int spin = 0; spin < 200 && live > 2; ++spin) {
    StatusOr<UnixFd> fd = ConnectUnix(sock);  // wakes the acceptor -> reap
    ASSERT_TRUE(fd.ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    live = server.connection_threads();
  }
  EXPECT_LE(live, 2u) << "exited connection threads were not reaped";
  server.Stop();
}

}  // namespace
}  // namespace m3::serve
