#include <gtest/gtest.h>

#include <set>

#include "pktsim/config.h"

namespace m3 {
namespace {

TEST(NetConfig, SampleStaysInsideTable4Ranges) {
  Rng rng(1);
  std::set<CcType> seen_cc;
  for (int i = 0; i < 500; ++i) {
    const NetConfig c = NetConfig::Sample(rng);
    seen_cc.insert(c.cc);
    EXPECT_GE(c.init_window, 5 * kKB);
    EXPECT_LE(c.init_window, 30 * kKB);
    EXPECT_GE(c.buffer, 200 * kKB);
    EXPECT_LE(c.buffer, 500 * kKB);
    EXPECT_GE(c.dctcp_k, 5 * kKB);
    EXPECT_LE(c.dctcp_k, 20 * kKB);
    EXPECT_GE(c.dcqcn_kmin, 20 * kKB);
    EXPECT_LE(c.dcqcn_kmin, 50 * kKB);
    EXPECT_GE(c.dcqcn_kmax, 50 * kKB);
    EXPECT_LE(c.dcqcn_kmax, 100 * kKB);
    EXPECT_LT(c.dcqcn_kmin, c.dcqcn_kmax);
    EXPECT_GE(c.hpcc_eta, 0.70);
    EXPECT_LE(c.hpcc_eta, 0.95);
    EXPECT_GE(c.hpcc_rate_ai_gbps, 0.5);
    EXPECT_LE(c.hpcc_rate_ai_gbps, 1.0);
    EXPECT_GE(c.timely_tlow, 40 * kUs);
    EXPECT_LE(c.timely_tlow, 60 * kUs);
    EXPECT_GE(c.timely_thigh, 100 * kUs);
    EXPECT_LE(c.timely_thigh, 150 * kUs);
  }
  EXPECT_EQ(seen_cc.size(), 4u);  // all protocols drawn
}

TEST(NetConfig, NameRoundTrip) {
  for (CcType cc : {CcType::kDctcp, CcType::kTimely, CcType::kDcqcn, CcType::kHpcc}) {
    EXPECT_EQ(CcFromName(CcName(cc)), cc);
  }
  EXPECT_THROW(CcFromName("TCP"), std::invalid_argument);
}

TEST(NetConfig, ToStringMentionsProtocolSpecifics) {
  NetConfig c;
  c.cc = CcType::kHpcc;
  c.hpcc_eta = 0.85;
  const std::string s = c.ToString();
  EXPECT_NE(s.find("HPCC"), std::string::npos);
  EXPECT_NE(s.find("eta"), std::string::npos);
  c.cc = CcType::kDctcp;
  EXPECT_NE(c.ToString().find("K="), std::string::npos);
}

TEST(NetConfig, SampleIsDeterministicPerRngState) {
  Rng a(7), b(7);
  for (int i = 0; i < 20; ++i) {
    const NetConfig ca = NetConfig::Sample(a);
    const NetConfig cb = NetConfig::Sample(b);
    EXPECT_EQ(ca.cc, cb.cc);
    EXPECT_EQ(ca.init_window, cb.init_window);
    EXPECT_EQ(ca.seed, cb.seed);
  }
}

}  // namespace
}  // namespace m3
