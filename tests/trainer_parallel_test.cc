// Data-parallel training: determinism across thread counts, loss
// accounting, and the thread-pool ParallelFor contract.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/model.h"
#include "core/trainer.h"
#include "ml/kernels.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace m3 {
namespace {

using ml::kernels::KernelImpl;

// Restores the process-wide kernel implementation on scope exit.
struct ImplGuard {
  KernelImpl prev = ml::kernels::GetKernelImpl();
  ~ImplGuard() { ml::kernels::SetKernelImpl(prev); }
};

std::vector<KernelImpl> AvailableImpls() {
  std::vector<KernelImpl> impls;
  for (KernelImpl impl :
       {KernelImpl::kNaive, KernelImpl::kTiled, KernelImpl::kAvx2, KernelImpl::kAvx512}) {
    if (ml::kernels::KernelImplAvailable(impl)) impls.push_back(impl);
  }
  return impls;
}

// A small model + synthetic tensor-only samples keep each train step cheap;
// TrainModel never touches the global feature constants, so reduced
// dimensions exercise the full code path.
M3ModelConfig SmallConfig() {
  M3ModelConfig cfg;
  cfg.feat_dim = 24;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  cfg.ff_dim = 48;
  cfg.spec_dim = 5;
  cfg.mlp_hidden = 40;
  cfg.out_dim = 60;
  cfg.max_seq = 4;
  cfg.init_seed = 77;
  return cfg;
}

std::vector<Sample> SyntheticSamples(const M3ModelConfig& cfg, int count,
                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Sample> samples(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Sample& s = samples[static_cast<std::size_t>(i)];
    const int hops = 1 + static_cast<int>(rng.NextBounded(
                             static_cast<std::size_t>(cfg.max_seq)));
    s.fg_feat = ml::Tensor::Randn(1, cfg.feat_dim, rng, 1.0f);
    s.bg_seq = ml::Tensor::Randn(hops, cfg.feat_dim, rng, 1.0f);
    s.spec = ml::Tensor::Randn(1, cfg.spec_dim, rng, 1.0f);
    s.target = ml::Tensor::Randn(1, cfg.out_dim, rng, 0.5f);
    s.baseline = ml::Tensor::Randn(1, cfg.out_dim, rng, 0.5f);
    s.mask = ml::Tensor::Zeros(1, cfg.out_dim);
    for (int j = 0; j < cfg.out_dim; ++j) {
      s.mask.at(0, j) = rng.NextBounded(4) == 0 ? 0.0f : 1.0f;
    }
  }
  return samples;
}

TrainOptions SmallTrainOptions(unsigned num_threads) {
  TrainOptions opts;
  opts.epochs = 3;
  opts.batch_size = 5;  // does not divide 23 samples: exercises the ragged tail batch
  opts.lr = 1e-3f;
  opts.val_frac = 0.2;
  opts.seed = 9;
  opts.num_threads = num_threads;
  return opts;
}

TEST(TrainerParallel, DeterministicAcrossThreadCountsForEveryKernelImpl) {
  const M3ModelConfig cfg = SmallConfig();
  const std::vector<Sample> samples = SyntheticSamples(cfg, 23, 42);
  ImplGuard guard;

  // Bitwise determinism must hold per implementation: for a fixed kernel
  // tier the slot layout and reduction order are thread-count invariant
  // (different tiers may round differently — that is cross-impl parity,
  // tested with tolerances in kernels_test).
  for (KernelImpl impl : AvailableImpls()) {
    ml::kernels::SetKernelImpl(impl);
    const char* impl_name = ml::kernels::KernelImplName(impl);

    M3Model serial_model(cfg);
    const TrainReport serial = TrainModel(serial_model, samples, SmallTrainOptions(1));

    for (unsigned threads : {2u, 8u}) {
      M3Model model(cfg);
      const TrainReport report = TrainModel(model, samples, SmallTrainOptions(threads));

      ASSERT_EQ(report.train_loss.size(), serial.train_loss.size());
      ASSERT_EQ(report.val_loss.size(), serial.val_loss.size());
      for (std::size_t e = 0; e < serial.train_loss.size(); ++e) {
        EXPECT_EQ(report.train_loss[e], serial.train_loss[e])
            << impl_name << ": train loss differs at epoch " << e << " with " << threads
            << " threads";
      }
      for (std::size_t e = 0; e < serial.val_loss.size(); ++e) {
        EXPECT_EQ(report.val_loss[e], serial.val_loss[e])
            << impl_name << ": val loss differs at epoch " << e << " with " << threads
            << " threads";
      }

      const std::vector<ml::Parameter*> want = serial_model.params();
      const std::vector<ml::Parameter*> got = model.params();
      ASSERT_EQ(want.size(), got.size());
      for (std::size_t p = 0; p < want.size(); ++p) {
        ASSERT_EQ(want[p]->value.size(), got[p]->value.size());
        for (std::size_t i = 0; i < want[p]->value.size(); ++i) {
          ASSERT_EQ(want[p]->value.vec()[i], got[p]->value.vec()[i])
              << impl_name << ": parameter " << want[p]->name << " diverges at element "
              << i << " with " << threads << " threads";
        }
      }
    }
  }
}

TEST(TrainerParallel, EvaluateLossDeterministicAcrossThreadCounts) {
  const M3ModelConfig cfg = SmallConfig();
  const std::vector<Sample> samples = SyntheticSamples(cfg, 17, 43);
  M3Model model(cfg);
  const double serial = EvaluateLoss(model, samples, true, true, 1);
  EXPECT_EQ(serial, EvaluateLoss(model, samples, true, true, 4));
  EXPECT_EQ(serial, EvaluateLoss(model, samples, true, true, 0));
}

TEST(TrainerParallel, FirstEpochLossIsPerSampleMean) {
  // With one batch per epoch, the reported first-epoch train loss is the
  // per-sample mean at the initial parameters — exactly EvaluateLoss on a
  // freshly initialized model (ragged-batch weighting makes this hold for
  // any batch size; the shuffle only permutes the summands).
  const M3ModelConfig cfg = SmallConfig();
  const std::vector<Sample> samples = SyntheticSamples(cfg, 12, 44);
  TrainOptions opts;
  opts.epochs = 1;
  opts.batch_size = 64;  // single batch
  opts.val_frac = 0.0;
  opts.seed = 3;
  M3Model trained(cfg);
  const TrainReport report = TrainModel(trained, samples, opts);
  M3Model fresh(cfg);
  const double expected = EvaluateLoss(fresh, samples, opts.use_context, opts.use_baseline);
  ASSERT_EQ(report.train_loss.size(), 1u);
  EXPECT_NEAR(report.train_loss[0], expected, 1e-12);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h.store(0);
  ParallelFor(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, PropagatesFirstException) {
  EXPECT_THROW(
      ParallelFor(64,
                  [&](std::size_t i) {
                    if (i % 7 == 3) throw std::runtime_error("boom");
                  },
                  4),
      std::runtime_error);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  std::atomic<int> total{0};
  ParallelFor(8, [&](std::size_t) {
    ParallelFor(8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, ThreadCapRespectsRequest) {
  // num_threads=1 must run entirely on the calling thread.
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<bool> all_on_caller{true};
  ParallelFor(
      32,
      [&](std::size_t) {
        if (std::this_thread::get_id() != caller) all_on_caller.store(false);
      },
      1);
  EXPECT_TRUE(all_on_caller.load());
}

}  // namespace
}  // namespace m3
