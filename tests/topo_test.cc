#include <gtest/gtest.h>

#include <set>

#include "topo/fat_tree.h"
#include "topo/parking_lot.h"
#include "topo/routing.h"
#include "topo/topology.h"
#include "util/rng.h"

namespace m3 {
namespace {

// ------------------------------------------------------------- topology ---

TEST(Topology, AddNodesAndLinks) {
  Topology t;
  const NodeId a = t.AddNode(NodeKind::kHost);
  const NodeId b = t.AddNode(NodeKind::kSwitch);
  const auto [ab, ba] = t.AddDuplexLink(a, b, GbpsToBpns(10), 1000);
  EXPECT_EQ(t.num_nodes(), 2u);
  EXPECT_EQ(t.num_links(), 2u);
  EXPECT_EQ(t.link(ab).src, a);
  EXPECT_EQ(t.link(ab).dst, b);
  EXPECT_EQ(t.FindLink(a, b), ab);
  EXPECT_EQ(t.FindLink(b, a), ba);
  EXPECT_EQ(t.ReverseLink(ab), ba);
  EXPECT_EQ(t.FindLink(b, b), kInvalidLink);
}

TEST(Topology, RouteValidation) {
  Topology t;
  const NodeId a = t.AddNode(NodeKind::kHost);
  const NodeId s = t.AddNode(NodeKind::kSwitch);
  const NodeId b = t.AddNode(NodeKind::kHost);
  const auto [as, _sa] = t.AddDuplexLink(a, s, GbpsToBpns(10), 1000);
  const auto [sb, _bs] = t.AddDuplexLink(s, b, GbpsToBpns(10), 1000);
  EXPECT_TRUE(t.ValidateRoute(a, b, {as, sb}));
  EXPECT_FALSE(t.ValidateRoute(a, b, {sb, as}));  // disconnected order
  EXPECT_FALSE(t.ValidateRoute(a, b, {as}));      // ends at switch
  EXPECT_FALSE(t.ValidateRoute(a, b, {}));
}

TEST(Topology, RouteMetrics) {
  Topology t;
  const NodeId a = t.AddNode(NodeKind::kHost);
  const NodeId s = t.AddNode(NodeKind::kSwitch);
  const NodeId b = t.AddNode(NodeKind::kHost);
  const LinkId as = t.AddLink(a, s, GbpsToBpns(10), 500);
  const LinkId sb = t.AddLink(s, b, GbpsToBpns(40), 700);
  const Route r{as, sb};
  EXPECT_EQ(t.RouteDelay(r), 1200);
  EXPECT_DOUBLE_EQ(t.RouteMinRate(r), GbpsToBpns(10));
}

TEST(Topology, IdealFctSinglePacketIsStoreAndForward) {
  Topology t;
  const NodeId a = t.AddNode(NodeKind::kHost);
  const NodeId s = t.AddNode(NodeKind::kSwitch);
  const NodeId b = t.AddNode(NodeKind::kHost);
  const LinkId as = t.AddLink(a, s, GbpsToBpns(10), 1000);
  const LinkId sb = t.AddLink(s, b, GbpsToBpns(10), 1000);
  // 500B + 48B hdr at 10G = 438.4 -> 439 ns per hop, plus 1000 ns delay each.
  const Ns expected = 2 * (1000 + TransmissionTime(548, GbpsToBpns(10)));
  EXPECT_EQ(IdealFct(t, {as, sb}, 500), expected);
}

TEST(Topology, IdealFctLargeFlowDominatedByBottleneck) {
  Topology t;
  const NodeId a = t.AddNode(NodeKind::kHost);
  const NodeId s = t.AddNode(NodeKind::kSwitch);
  const NodeId b = t.AddNode(NodeKind::kHost);
  const LinkId as = t.AddLink(a, s, GbpsToBpns(10), 1000);
  const LinkId sb = t.AddLink(s, b, GbpsToBpns(40), 1000);
  const Bytes size = 10 * kMB;
  const Ns fct = IdealFct(t, {as, sb}, size);
  // Serialization at 10G with 4.8% header overhead ~ 8.38 ms; allow slack
  // for the first-packet pipeline fill.
  const double goodput = static_cast<double>(size) / static_cast<double>(fct);
  EXPECT_NEAR(goodput, GbpsToBpns(10) * 1000.0 / 1048.0, 0.01);
}

TEST(Topology, IdealFctMonotoneInSize) {
  Topology t;
  const NodeId a = t.AddNode(NodeKind::kHost);
  const NodeId b = t.AddNode(NodeKind::kHost);
  const LinkId ab = t.AddLink(a, b, GbpsToBpns(10), 1000);
  Ns prev = 0;
  for (Bytes size : {100, 1000, 1001, 5000, 50000, 1000000}) {
    const Ns fct = IdealFct(t, {ab}, size);
    EXPECT_GT(fct, prev);
    prev = fct;
  }
}

// ------------------------------------------------------------- fat tree ---

TEST(FatTree, SmallTopologyShape) {
  const FatTree ft(FatTreeConfig::Small(1.0));
  EXPECT_EQ(ft.num_hosts(), 256);
  EXPECT_EQ(ft.num_racks(), 32);
  // Nodes: 256 hosts + 32 ToR + 2*4 fabric + 4*16 spines = 360.
  EXPECT_EQ(ft.topo().num_nodes(), 360u);
}

TEST(FatTree, OversubscriptionKnob) {
  EXPECT_DOUBLE_EQ(FatTreeConfig::Small(1.0).Oversubscription(), 1.0);
  EXPECT_DOUBLE_EQ(FatTreeConfig::Small(2.0).Oversubscription(), 2.0);
  EXPECT_DOUBLE_EQ(FatTreeConfig::Small(4.0).Oversubscription(), 4.0);
}

TEST(FatTree, RoutesAreValidAndEvenLength) {
  const FatTree ft(FatTreeConfig::Small(2.0));
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const int a = static_cast<int>(rng.NextBounded(256));
    int b = static_cast<int>(rng.NextBounded(256));
    if (a == b) b = (b + 1) % 256;
    const Route r = ft.RouteBetween(a, b, rng.NextU64());
    EXPECT_TRUE(ft.topo().ValidateRoute(ft.host(a), ft.host(b), r));
    EXPECT_TRUE(r.size() == 2 || r.size() == 4 || r.size() == 6);
    if (ft.RackOfHost(a) == ft.RackOfHost(b)) {
      EXPECT_EQ(r.size(), 2u);
    } else if (ft.PodOfRack(ft.RackOfHost(a)) == ft.PodOfRack(ft.RackOfHost(b))) {
      EXPECT_EQ(r.size(), 4u);
    } else {
      EXPECT_EQ(r.size(), 6u);
    }
  }
}

TEST(FatTree, EcmpSpreadsAcrossSpines) {
  const FatTree ft(FatTreeConfig::Small(1.0));
  // Cross-pod pair: many flow keys should use many distinct spine links.
  std::set<LinkId> spine_links;
  for (std::uint64_t key = 0; key < 256; ++key) {
    const Route r = ft.RouteBetween(0, 255, key);
    ASSERT_EQ(r.size(), 6u);
    spine_links.insert(r[2]);  // fabric -> spine link
  }
  // 4 planes x 16 spines = 64 choices; with 256 keys we expect to hit most.
  EXPECT_GT(spine_links.size(), 40u);
}

TEST(FatTree, EcmpDeterministicPerKey) {
  const FatTree ft(FatTreeConfig::Small(1.0));
  EXPECT_EQ(ft.RouteBetween(3, 200, 77), ft.RouteBetween(3, 200, 77));
}

TEST(FatTree, RouteMatchesGenericShortestPath) {
  const FatTree ft(FatTreeConfig::Small(4.0));
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    const int a = static_cast<int>(rng.NextBounded(256));
    int b = static_cast<int>(rng.NextBounded(256));
    if (a == b) b = (b + 1) % 256;
    const Route structural = ft.RouteBetween(a, b, 1);
    const Route generic = ShortestPathEcmp(ft.topo(), ft.host(a), ft.host(b), 1);
    EXPECT_EQ(structural.size(), generic.size());
  }
}

TEST(FatTree, ShortestPathCountMatchesStructure) {
  const FatTree ft(FatTreeConfig::Small(1.0));
  // Cross-pod: 4 planes x 16 spines = 64 shortest paths.
  EXPECT_DOUBLE_EQ(CountShortestPaths(ft.topo(), ft.host(0), ft.host(255)), 64.0);
  // Same pod, different rack: 4 fabric choices.
  EXPECT_DOUBLE_EQ(CountShortestPaths(ft.topo(), ft.host(0), ft.host(9)), 4.0);
  // Same rack: unique path.
  EXPECT_DOUBLE_EQ(CountShortestPaths(ft.topo(), ft.host(0), ft.host(1)), 1.0);
}

TEST(FatTree, RejectsInvalidConfig) {
  FatTreeConfig cfg;
  cfg.pods = 0;
  EXPECT_THROW(FatTree{cfg}, std::invalid_argument);
}

// ---------------------------------------------------------- parking lot ---

TEST(ParkingLot, ChainShape) {
  ParkingLot pl(4, GbpsToBpns(10), 1000);
  EXPECT_EQ(pl.num_links(), 4);
  for (int i = 0; i < 4; ++i) {
    const Link& l = pl.topo().link(pl.path_link(i));
    EXPECT_EQ(l.src, pl.switch_at(i));
    EXPECT_EQ(l.dst, pl.switch_at(i + 1));
  }
}

TEST(ParkingLot, AttachHostDeduplicatesByEndpointKey) {
  ParkingLot pl(2, GbpsToBpns(10), 1000);
  const NodeId h1 = pl.AttachHost(0, GbpsToBpns(10), /*endpoint_key=*/42);
  const NodeId h2 = pl.AttachHost(0, GbpsToBpns(10), 42);
  const NodeId h3 = pl.AttachHost(0, GbpsToBpns(10), 43);
  EXPECT_EQ(h1, h2);
  EXPECT_NE(h1, h3);
}

TEST(ParkingLot, RoutesSpanRequestedHops) {
  ParkingLot pl(6, GbpsToBpns(40), 1000);
  const NodeId a = pl.AttachHost(1, GbpsToBpns(10), 1);
  const NodeId b = pl.AttachHost(4, GbpsToBpns(10), 2);
  const Route r = pl.RouteBetween(a, 1, b, 4);
  EXPECT_TRUE(pl.topo().ValidateRoute(a, b, r));
  EXPECT_EQ(r.size(), 5u);  // access + 3 path links + access
  EXPECT_EQ(r[1], pl.path_link(1));
  EXPECT_EQ(r[3], pl.path_link(3));
}

TEST(ParkingLot, RejectsBackwardRoutes) {
  ParkingLot pl(3, GbpsToBpns(10), 1000);
  const NodeId a = pl.AttachHost(2, GbpsToBpns(10), 1);
  const NodeId b = pl.AttachHost(0, GbpsToBpns(10), 2);
  EXPECT_THROW(pl.RouteBetween(a, 2, b, 0), std::invalid_argument);
}

}  // namespace
}  // namespace m3
