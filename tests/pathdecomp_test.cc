#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "pathdecomp/decompose.h"
#include "pathdecomp/path_topology.h"
#include "pathdecomp/sampling.h"
#include "topo/fat_tree.h"
#include "workload/generator.h"
#include "workload/size_dist.h"

namespace m3 {
namespace {

GeneratedWorkload SmallWorkload(int flows = 800, std::uint64_t seed = 5) {
  static const FatTree ft(FatTreeConfig::Small(2.0));
  const auto tm = TrafficMatrix::MatrixB(ft.num_racks(), ft.config().racks_per_pod);
  const auto sizes = MakeWebServer();
  WorkloadSpec spec;
  spec.num_flows = flows;
  spec.seed = seed;
  return GenerateWorkload(ft, tm, *sizes, spec);
}

const FatTree& SmallTree() {
  static const FatTree ft(FatTreeConfig::Small(2.0));
  return ft;
}

TEST(Decompose, EveryFlowIsForegroundOnExactlyItsOwnPath) {
  const auto wl = SmallWorkload();
  PathDecomposition decomp(SmallTree().topo(), wl.flows);
  std::size_t total_fg = 0;
  for (std::size_t i = 0; i < decomp.num_paths(); ++i) {
    const PathInfo& p = decomp.path(i);
    total_fg += p.fg_flows.size();
    for (FlowId f : p.fg_flows) {
      EXPECT_EQ(wl.flows[static_cast<std::size_t>(f)].path, p.links);
    }
  }
  EXPECT_EQ(total_fg, wl.flows.size());
}

TEST(Decompose, BackgroundFlowsShareButDoNotCoverPath) {
  const auto wl = SmallWorkload();
  PathDecomposition decomp(SmallTree().topo(), wl.flows);
  // Check a handful of paths thoroughly.
  for (std::size_t i = 0; i < std::min<std::size_t>(decomp.num_paths(), 20); ++i) {
    const PathInfo& p = decomp.path(i);
    const std::set<LinkId> path_links(p.links.begin(), p.links.end());
    const std::set<FlowId> fg(p.fg_flows.begin(), p.fg_flows.end());
    std::map<FlowId, int> segment_hops;  // total hops covered per flow
    for (const BgFlowOnPath& bg : decomp.BackgroundFlows(i)) {
      EXPECT_FALSE(fg.count(bg.flow));
      const Flow& f = wl.flows[static_cast<std::size_t>(bg.flow)];
      EXPECT_LT(bg.entry_hop, bg.exit_hop);
      // Every hop inside the segment is genuinely traversed by the flow.
      const std::set<LinkId> flow_links(f.path.begin(), f.path.end());
      for (int h = bg.entry_hop; h < bg.exit_hop; ++h) {
        EXPECT_TRUE(flow_links.count(p.links[static_cast<std::size_t>(h)]));
      }
      segment_hops[bg.flow] += bg.exit_hop - bg.entry_hop;
    }
    // Per flow: segments jointly cover exactly the shared links, and never
    // the whole path.
    for (const auto& [flow_id, covered] : segment_hops) {
      const Flow& f = wl.flows[static_cast<std::size_t>(flow_id)];
      int shared = 0;
      for (LinkId l : f.path) shared += path_links.count(l);
      EXPECT_EQ(covered, shared);
      EXPECT_LT(covered, static_cast<int>(p.links.size()));
    }
  }
}

TEST(Decompose, BackgroundSetMatchesBruteForce) {
  const auto wl = SmallWorkload(300, 9);
  PathDecomposition decomp(SmallTree().topo(), wl.flows);
  for (std::size_t i = 0; i < std::min<std::size_t>(decomp.num_paths(), 10); ++i) {
    const PathInfo& p = decomp.path(i);
    const std::set<LinkId> path_links(p.links.begin(), p.links.end());
    std::set<FlowId> expected;
    for (const Flow& f : wl.flows) {
      std::size_t shared = 0;
      for (LinkId l : f.path) shared += path_links.count(l);
      if (shared > 0 && shared < p.links.size()) expected.insert(f.id);
    }
    std::set<FlowId> got;
    for (const BgFlowOnPath& bg : decomp.BackgroundFlows(i)) got.insert(bg.flow);
    EXPECT_EQ(got, expected) << "path " << i;
  }
}

TEST(Sampling, WeightsFollowForegroundCounts) {
  const auto wl = SmallWorkload();
  PathDecomposition decomp(SmallTree().topo(), wl.flows);
  Rng rng(3);
  const auto sample = SamplePaths(decomp, 20000, rng);
  std::map<std::size_t, int> hist;
  for (std::size_t idx : sample) hist[idx]++;
  // Compare empirical frequency to weight for the heaviest path.
  const auto weights = decomp.ForegroundWeights();
  double total_w = 0.0;
  for (double w : weights) total_w += w;
  const std::size_t heaviest = static_cast<std::size_t>(
      std::max_element(weights.begin(), weights.end()) - weights.begin());
  const double expect_frac = weights[heaviest] / total_w;
  const double got_frac = hist[heaviest] / 20000.0;
  EXPECT_NEAR(got_frac, expect_frac, std::max(0.01, expect_frac * 0.5));
}

TEST(Sampling, StatsShapesMatch) {
  const auto wl = SmallWorkload();
  PathDecomposition decomp(SmallTree().topo(), wl.flows);
  Rng rng(4);
  const auto sample = SamplePaths(decomp, 50, rng);
  const auto stats = ComputePathSampleStats(decomp, sample);
  ASSERT_EQ(stats.hop_counts.size(), 50u);
  for (int h : stats.hop_counts) EXPECT_TRUE(h == 2 || h == 4 || h == 6);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_GT(stats.fg_counts[i], 0);
    EXPECT_GE(stats.bg_counts[i], 0);
  }
}

TEST(PathTopology, ScenarioPreservesSizesAndArrivals) {
  const auto wl = SmallWorkload();
  PathDecomposition decomp(SmallTree().topo(), wl.flows);
  Rng rng(5);
  const std::size_t idx = SamplePaths(decomp, 1, rng)[0];
  const PathScenario sc = BuildPathScenario(SmallTree().topo(), wl.flows, decomp, idx);

  EXPECT_EQ(sc.num_links, static_cast<int>(decomp.path(idx).links.size()));
  EXPECT_EQ(sc.num_fg(), decomp.path(idx).fg_flows.size());
  for (std::size_t i = 0; i < sc.flows.size(); ++i) {
    const Flow& orig = wl.flows[static_cast<std::size_t>(sc.orig_id[i])];
    EXPECT_EQ(sc.flows[i].size, orig.size);
    EXPECT_EQ(sc.flows[i].arrival, orig.arrival);
    EXPECT_TRUE(sc.lot->topo().ValidateRoute(sc.flows[i].src, sc.flows[i].dst, sc.flows[i].path));
  }
}

TEST(PathTopology, ChainLinksMatchOriginalRates) {
  const auto wl = SmallWorkload();
  const Topology& topo = SmallTree().topo();
  PathDecomposition decomp(topo, wl.flows);
  Rng rng(6);
  const std::size_t idx = SamplePaths(decomp, 1, rng)[0];
  const PathScenario sc = BuildPathScenario(topo, wl.flows, decomp, idx);
  const PathInfo& info = decomp.path(idx);
  for (int i = 0; i < sc.num_links; ++i) {
    const Link& lot_link = sc.lot->topo().link(sc.lot->path_link(i));
    const Link& orig_link = topo.link(info.links[static_cast<std::size_t>(i)]);
    EXPECT_DOUBLE_EQ(lot_link.rate, orig_link.rate);
    EXPECT_EQ(lot_link.delay, orig_link.delay);
  }
  // Endpoints of the chain are hosts; interior nodes are switches.
  EXPECT_EQ(sc.lot->topo().kind(sc.lot->switch_at(0)), NodeKind::kHost);
  EXPECT_EQ(sc.lot->topo().kind(sc.lot->switch_at(sc.num_links)), NodeKind::kHost);
}

TEST(PathTopology, ForegroundFlowsSpanWholeChain) {
  const auto wl = SmallWorkload();
  PathDecomposition decomp(SmallTree().topo(), wl.flows);
  Rng rng(7);
  const std::size_t idx = SamplePaths(decomp, 1, rng)[0];
  const PathScenario sc = BuildPathScenario(SmallTree().topo(), wl.flows, decomp, idx);
  for (std::size_t i = 0; i < sc.flows.size(); ++i) {
    if (!sc.is_fg[i]) continue;
    ASSERT_EQ(static_cast<int>(sc.flows[i].path.size()), sc.num_links);
    for (int h = 0; h < sc.num_links; ++h) {
      EXPECT_EQ(sc.flows[i].path[static_cast<std::size_t>(h)], sc.lot->path_link(h));
    }
  }
}

TEST(PathTopology, BothSimulatorsRunOnScenario) {
  const auto wl = SmallWorkload(400, 11);
  PathDecomposition decomp(SmallTree().topo(), wl.flows);
  Rng rng(8);
  const std::size_t idx = SamplePaths(decomp, 1, rng)[0];
  const PathScenario sc = BuildPathScenario(SmallTree().topo(), wl.flows, decomp, idx);

  const auto fluid = RunPathFlowSim(sc);
  NetConfig cfg;
  const auto pkt = RunPathPktSim(sc, cfg);
  ASSERT_EQ(fluid.size(), sc.flows.size());
  ASSERT_EQ(pkt.size(), sc.flows.size());
  for (std::size_t i = 0; i < sc.flows.size(); ++i) {
    EXPECT_GE(fluid[i].slowdown, 1.0 - 1e-9);
    EXPECT_GE(pkt[i].slowdown, 0.99);
  }
  const auto fg = ForegroundSlowdowns(sc, pkt);
  EXPECT_EQ(fg.size(), sc.num_fg());
}

}  // namespace
}  // namespace m3
