#include <gtest/gtest.h>

#include <cmath>

#include "core/aggregate.h"
#include "core/dataset.h"
#include "core/estimator.h"
#include "core/model.h"
#include "core/scenario.h"
#include "core/trainer.h"
#include "topo/fat_tree.h"
#include "workload/generator.h"

namespace m3 {
namespace {

// ------------------------------------------------------------ feature map ---

TEST(FeatureMap, BucketBoundaries) {
  EXPECT_EQ(SizeBucketOf(1), 0);
  EXPECT_EQ(SizeBucketOf(250), 0);
  EXPECT_EQ(SizeBucketOf(251), 1);
  EXPECT_EQ(SizeBucketOf(50000), 8);
  EXPECT_EQ(SizeBucketOf(50001), 9);
  EXPECT_EQ(SizeBucketOf(100 * kMB), 9);
  EXPECT_EQ(OutputBucketOf(1000), 0);
  EXPECT_EQ(OutputBucketOf(1001), 1);
  EXPECT_EQ(OutputBucketOf(10001), 2);
  EXPECT_EQ(OutputBucketOf(50001), 3);
}

TEST(FeatureMap, CountsAndPercentilesPerBucket) {
  std::vector<SizedSlowdown> flows;
  for (int i = 1; i <= 100; ++i) {
    flows.push_back({100, static_cast<double>(i)});       // bucket 0
    flows.push_back({100000, 1.0 + 0.01 * i});            // bucket 9
  }
  const FeatureMap map = BuildFeatureMap(flows);
  EXPECT_DOUBLE_EQ(map.counts[0], 100.0);
  EXPECT_DOUBLE_EQ(map.counts[9], 100.0);
  EXPECT_DOUBLE_EQ(map.counts[4], 0.0);
  // p99 of bucket 0 is ~99.
  EXPECT_NEAR(map.pct[0][98], 99.0, 1.1);
  // Percentiles are monotone.
  for (int p = 1; p < kNumPercentiles; ++p) {
    EXPECT_LE(map.pct[0][static_cast<std::size_t>(p - 1)], map.pct[0][static_cast<std::size_t>(p)]);
  }
}

TEST(FeatureMap, FlattenShapeAndLogEncoding) {
  std::vector<SizedSlowdown> flows{{100, std::exp(1.0)}};
  const ml::Tensor t = FlattenFeature(BuildFeatureMap(flows));
  ASSERT_EQ(t.rows(), 1);
  ASSERT_EQ(t.cols(), kFeatureDim);
  // All 100 percentiles of bucket 0 equal e -> log = 1.
  for (int p = 0; p < 100; ++p) EXPECT_NEAR(t.at(0, p), 1.0f, 1e-5f);
  // Empty buckets encode as zeros.
  EXPECT_FLOAT_EQ(t.at(0, 5 * 100 + 3), 0.0f);
}

TEST(FeatureMap, TargetRoundTripThroughDecode) {
  std::vector<SizedSlowdown> flows;
  for (int i = 0; i < 200; ++i) flows.push_back({5000, 2.0 + (i % 10) * 0.3});
  const TargetDist t = BuildTarget(flows);
  ASSERT_TRUE(t.has[1]);  // (1KB, 10KB]
  const auto decoded = DecodeOutput(TargetToTensor(t));
  for (int p = 0; p < kNumPercentiles; ++p) {
    EXPECT_NEAR(decoded[1][static_cast<std::size_t>(p)], t.pct[1][static_cast<std::size_t>(p)], 1e-3);
  }
}

TEST(FeatureMap, MaskCoversOnlyPopulatedBuckets) {
  std::vector<SizedSlowdown> flows{{500, 1.5}, {20000, 3.0}};
  const TargetDist t = BuildTarget(flows);
  const ml::Tensor mask = TargetMask(t);
  EXPECT_FLOAT_EQ(mask.at(0, 0), 1.0f);             // bucket 0 populated
  EXPECT_FLOAT_EQ(mask.at(0, 100), 0.0f);           // bucket 1 empty
  EXPECT_FLOAT_EQ(mask.at(0, 200), 1.0f);           // bucket 2 populated
  EXPECT_FLOAT_EQ(mask.at(0, 300), 0.0f);           // bucket 3 empty
}

TEST(FeatureMap, DecodeClampsAndMonotonizes) {
  ml::Tensor out(1, kNumOutputBuckets * kNumPercentiles);
  out.Fill(-1.0f);          // exp(-1) < 1 -> clamps to 1
  out.at(0, 1) = 2.0f;      // spike; later entries must not drop below it
  out.at(0, 2) = 0.0f;
  const auto dist = DecodeOutput(out);
  EXPECT_DOUBLE_EQ(dist[0][0], 1.0);
  EXPECT_GE(dist[0][2], dist[0][1]);
}

// ----------------------------------------------------------------- spec ---

TEST(NetSpec, EncodesPathGeometryAndConfig) {
  SyntheticSpec spec;
  spec.num_links = 4;
  spec.num_fg = 50;
  spec.bg_ratio = 1.0;
  spec.seed = 3;
  const PathScenario sc = BuildSyntheticScenario(spec);
  NetConfig cfg;
  cfg.cc = CcType::kHpcc;
  const PathSpecInfo info = ComputePathSpec(sc, cfg);
  EXPECT_EQ(info.num_links, 4);
  EXPECT_GT(info.base_rtt, 0);
  EXPECT_GT(info.bdp, 0);
  EXPECT_DOUBLE_EQ(info.num_fg, 50.0);

  const ml::Tensor enc = EncodeSpec(cfg, info);
  ASSERT_EQ(enc.cols(), kSpecDim);
  // One-hot: HPCC is index 3.
  EXPECT_FLOAT_EQ(enc.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(enc.at(0, 3), 1.0f);
}

// -------------------------------------------------------------- scenario ---

TEST(Scenario, RespectsSpecShape) {
  SyntheticSpec spec;
  spec.num_links = 6;
  spec.num_fg = 100;
  spec.bg_ratio = 2.0;
  spec.seed = 11;
  const PathScenario sc = BuildSyntheticScenario(spec);
  EXPECT_EQ(sc.num_links, 6);
  EXPECT_EQ(sc.num_fg(), 100u);
  EXPECT_EQ(sc.flows.size(), 300u);
  for (std::size_t i = 0; i < sc.flows.size(); ++i) {
    EXPECT_TRUE(sc.lot->topo().ValidateRoute(sc.flows[i].src, sc.flows[i].dst, sc.flows[i].path));
    if (!sc.is_fg[i]) {
      EXPECT_FALSE(sc.entry_hop[i] == 0 && sc.exit_hop[i] == 6)
          << "background flow covering the whole path";
    }
  }
}

TEST(Scenario, LoadScalingHitsTarget) {
  for (double load : {0.3, 0.7}) {
    SyntheticSpec spec;
    spec.num_links = 2;
    spec.num_fg = 400;
    spec.bg_ratio = 1.0;
    spec.max_load = load;
    spec.seed = 13;
    const PathScenario sc = BuildSyntheticScenario(spec);
    // Recompute chain-link loads over the arrival horizon.
    Ns horizon = 0;
    std::array<double, 2> bytes{};
    for (std::size_t i = 0; i < sc.flows.size(); ++i) {
      horizon = std::max(horizon, sc.flows[i].arrival);
      for (int h = sc.entry_hop[i]; h < sc.exit_hop[i]; ++h) {
        bytes[static_cast<std::size_t>(h)] += static_cast<double>(sc.flows[i].size);
      }
    }
    double max_load = 0.0;
    for (int h = 0; h < 2; ++h) {
      const Link& l = sc.lot->topo().link(sc.lot->path_link(h));
      max_load = std::max(max_load, bytes[static_cast<std::size_t>(h)] /
                                        (l.rate * static_cast<double>(horizon)));
    }
    EXPECT_NEAR(max_load, load, load * 0.1);
  }
}

TEST(Scenario, DeterministicForSeed) {
  SyntheticSpec spec;
  spec.seed = 21;
  spec.num_fg = 50;
  const PathScenario a = BuildSyntheticScenario(spec);
  const PathScenario b = BuildSyntheticScenario(spec);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].size, b.flows[i].size);
    EXPECT_EQ(a.flows[i].arrival, b.flows[i].arrival);
  }
}

TEST(Scenario, SampleCoversTable2Space) {
  Rng rng(31);
  std::set<int> lengths;
  std::set<int> families;
  for (int i = 0; i < 200; ++i) {
    const SyntheticSpec s = SyntheticSpec::Sample(rng, 100);
    lengths.insert(s.num_links);
    families.insert(static_cast<int>(s.family));
    EXPECT_GE(s.theta, 5e3);
    EXPECT_LE(s.theta, 50e3);
    EXPECT_GE(s.sigma, 1.0);
    EXPECT_LE(s.sigma, 2.0);
    EXPECT_GE(s.max_load, 0.2);
    EXPECT_LE(s.max_load, 0.8);
  }
  EXPECT_EQ(lengths.size(), 3u);
  EXPECT_EQ(families.size(), 4u);
}

// --------------------------------------------------------------- dataset ---

TEST(Dataset, SampleShapesAreConsistent) {
  SyntheticSpec spec;
  spec.num_links = 4;
  spec.num_fg = 120;
  spec.bg_ratio = 1.5;
  spec.seed = 17;
  const PathScenario sc = BuildSyntheticScenario(spec);
  NetConfig cfg;
  const Sample s = BuildSample(sc, cfg);
  EXPECT_EQ(s.fg_feat.cols(), kFeatureDim);
  EXPECT_EQ(s.bg_seq.rows(), 4);
  EXPECT_EQ(s.bg_seq.cols(), kFeatureDim);
  EXPECT_EQ(s.spec.cols(), kSpecDim);
  EXPECT_EQ(s.target.cols(), 400);
  EXPECT_EQ(s.mask.cols(), 400);
  // Foreground flows exist, so at least one output bucket is populated.
  float mask_sum = 0.0f;
  for (float v : s.mask.vec()) mask_sum += v;
  EXPECT_GT(mask_sum, 0.0f);
}

TEST(Dataset, FlowSimUnderestimatesTails) {
  // The motivating observation (Fig. 6): flowSim underestimates slowdown,
  // especially for small flows. Check gt p99 >= flowSim p99 for the small
  // bucket in a loaded scenario.
  SyntheticSpec spec;
  spec.num_links = 4;
  spec.num_fg = 400;
  spec.bg_ratio = 2.0;
  spec.max_load = 0.7;
  spec.theta = 10000.0;
  spec.seed = 23;
  const PathScenario sc = BuildSyntheticScenario(spec);
  NetConfig cfg;  // DCTCP
  const Sample s = BuildSample(sc, cfg);
  ASSERT_TRUE(s.gt.has[0]);
  ASSERT_TRUE(s.flowsim.has[0]);
  EXPECT_GE(s.gt.pct[0][98], s.flowsim.pct[0][98] * 0.95);
}

TEST(Dataset, SyntheticDatasetGeneration) {
  DatasetOptions opts;
  opts.num_scenarios = 4;
  opts.num_fg = 60;
  opts.seed = 3;
  const auto samples = MakeSyntheticDataset(opts);
  ASSERT_EQ(samples.size(), 4u);
  for (const Sample& s : samples) {
    EXPECT_EQ(s.fg_feat.cols(), kFeatureDim);
    EXPECT_GE(s.bg_seq.rows(), 2);
    EXPECT_LE(s.bg_seq.rows(), 6);
  }
}

// ----------------------------------------------------------------- model ---

TEST(Model, PredictShapeAndDeterminism) {
  M3ModelConfig cfg;
  cfg.d_model = 32;
  cfg.num_layers = 1;
  cfg.ff_dim = 64;
  cfg.mlp_hidden = 64;
  M3Model model(cfg);
  ml::Tensor fg(1, kFeatureDim), bg(3, kFeatureDim), spec(1, kSpecDim);
  fg.Fill(0.5f);
  bg.Fill(0.2f);
  spec.Fill(0.1f);
  const auto a = model.Predict(fg, bg, spec);
  const auto b = model.Predict(fg, bg, spec);
  for (int i = 0; i < kNumOutputBuckets; ++i) {
    for (int p = 0; p < kNumPercentiles; ++p) {
      EXPECT_DOUBLE_EQ(a[static_cast<std::size_t>(i)][static_cast<std::size_t>(p)],
                       b[static_cast<std::size_t>(i)][static_cast<std::size_t>(p)]);
      EXPECT_GE(a[static_cast<std::size_t>(i)][static_cast<std::size_t>(p)], 1.0);
    }
  }
}

TEST(Model, ContextAblationChangesOutput) {
  M3ModelConfig cfg;
  cfg.d_model = 32;
  cfg.num_layers = 1;
  cfg.ff_dim = 64;
  cfg.mlp_hidden = 64;
  M3Model model(cfg);
  ml::Tensor fg(1, kFeatureDim), bg(2, kFeatureDim), spec(1, kSpecDim);
  fg.Fill(0.5f);
  bg.Fill(0.7f);
  const auto with_ctx = model.Predict(fg, bg, spec, /*use_context=*/true);
  const auto without = model.Predict(fg, bg, spec, /*use_context=*/false);
  double diff = 0.0;
  for (int p = 0; p < kNumPercentiles; ++p) diff += std::abs(with_ctx[0][static_cast<std::size_t>(p)] - without[0][static_cast<std::size_t>(p)]);
  EXPECT_GT(diff, 1e-9);
}

TEST(Model, SaveLoadPreservesPredictions) {
  M3ModelConfig cfg;
  cfg.d_model = 32;
  cfg.num_layers = 1;
  cfg.ff_dim = 64;
  cfg.mlp_hidden = 64;
  cfg.init_seed = 99;
  M3Model model(cfg);
  ml::Tensor fg(1, kFeatureDim), bg(2, kFeatureDim), spec(1, kSpecDim);
  fg.Fill(0.3f);
  const auto before = model.Predict(fg, bg, spec);
  const std::string path = testing::TempDir() + "/m3_model_test.ckpt";
  model.Save(path);

  M3ModelConfig cfg2 = cfg;
  cfg2.init_seed = 1;  // different random init
  M3Model loaded(cfg2);
  loaded.Load(path);
  const auto after = loaded.Predict(fg, bg, spec);
  for (int p = 0; p < kNumPercentiles; ++p) {
    EXPECT_DOUBLE_EQ(after[2][static_cast<std::size_t>(p)], before[2][static_cast<std::size_t>(p)]);
  }
  std::remove(path.c_str());
}

TEST(Model, TrainingReducesLoss) {
  DatasetOptions dopts;
  dopts.num_scenarios = 12;
  dopts.num_fg = 80;
  dopts.seed = 29;
  const auto samples = MakeSyntheticDataset(dopts);

  M3ModelConfig mcfg;
  mcfg.d_model = 32;
  mcfg.num_layers = 1;
  mcfg.ff_dim = 64;
  mcfg.mlp_hidden = 64;
  M3Model model(mcfg);
  TrainOptions topts;
  topts.epochs = 15;
  topts.batch_size = 4;
  topts.val_frac = 0.0;
  const TrainReport report = TrainModel(model, samples, topts);
  ASSERT_EQ(report.train_loss.size(), 15u);
  EXPECT_LT(report.train_loss.back(), report.train_loss.front() * 0.8);
}

// ------------------------------------------------------------- aggregate ---

TEST(Aggregate, WeightedPercentileBasics) {
  std::vector<std::pair<double, double>> w{{1.0, 1.0}, {2.0, 1.0}, {3.0, 2.0}};
  EXPECT_DOUBLE_EQ(WeightedPercentile(w, 100), 3.0);
  EXPECT_DOUBLE_EQ(WeightedPercentile(w, 25), 1.0);
  EXPECT_DOUBLE_EQ(WeightedPercentile(w, 50), 2.0);
  EXPECT_DOUBLE_EQ(WeightedPercentile({}, 50), 0.0);
}

TEST(Aggregate, SinglePathPassesThrough) {
  PathEstimate pe;
  for (int p = 0; p < kNumPercentiles; ++p) pe.pct[0][static_cast<std::size_t>(p)] = 1.0 + p * 0.1;
  pe.counts[0] = 10.0;
  const auto agg = AggregateBuckets({pe});
  ASSERT_EQ(agg[0].size(), 100u);
  // Aggregating one path reproduces its own percentiles (within grid step).
  EXPECT_NEAR(agg[0][98], pe.pct[0][98], 0.2);
  EXPECT_TRUE(agg[1].empty());
}

TEST(Aggregate, CountWeightingDominates) {
  // Path A: slowdown ~1 with tiny weight; path B: slowdown ~10 with huge
  // weight. The aggregate p50 must be near 10.
  PathEstimate a, b;
  for (int p = 0; p < kNumPercentiles; ++p) {
    a.pct[0][static_cast<std::size_t>(p)] = 1.0;
    b.pct[0][static_cast<std::size_t>(p)] = 10.0;
  }
  a.counts[0] = 1.0;
  b.counts[0] = 1000.0;
  const auto agg = AggregateBuckets({a, b});
  EXPECT_NEAR(agg[0][49], 10.0, 1e-9);
}

TEST(Aggregate, CombineBucketsMixesByCount) {
  std::array<std::vector<double>, kNumOutputBuckets> bucket_pct;
  std::array<double, kNumOutputBuckets> counts{};
  bucket_pct[0].assign(100, 2.0);
  counts[0] = 900.0;
  bucket_pct[3].assign(100, 8.0);
  counts[3] = 100.0;
  const auto combined = CombineBuckets(bucket_pct, counts);
  ASSERT_EQ(combined.size(), 100u);
  EXPECT_DOUBLE_EQ(combined[49], 2.0);   // median from the dominant bucket
  EXPECT_DOUBLE_EQ(combined[98], 8.0);   // tail from the rare-but-slow bucket
}

TEST(Aggregate, BucketSlowdownsSplitsBySize) {
  std::vector<FlowResult> results;
  FlowResult r;
  r.size = 500;
  r.slowdown = 2.0;
  results.push_back(r);
  r.size = 5000;
  r.slowdown = 3.0;
  results.push_back(r);
  const auto buckets = BucketSlowdowns(results);
  EXPECT_EQ(buckets[0].size(), 1u);
  EXPECT_EQ(buckets[1].size(), 1u);
  const auto p99 = BucketPercentile(buckets, 99);
  EXPECT_DOUBLE_EQ(p99[0], 2.0);
  EXPECT_DOUBLE_EQ(p99[3], 0.0);  // empty bucket
}

// ------------------------------------------------------------- estimator ---

TEST(Estimator, EndToEndPipelinesAgreeOnShape) {
  const FatTree ft(FatTreeConfig::Small(2.0));
  const auto tm = TrafficMatrix::MatrixB(ft.num_racks(), ft.config().racks_per_pod);
  const auto sizes = MakeWebServer();
  WorkloadSpec wspec;
  wspec.num_flows = 600;
  wspec.max_load = 0.4;
  wspec.seed = 41;
  const auto wl = GenerateWorkload(ft, tm, *sizes, wspec);

  NetConfig cfg;
  M3Options opts;
  opts.num_paths = 5;

  M3ModelConfig mcfg;
  mcfg.d_model = 32;
  mcfg.num_layers = 1;
  mcfg.ff_dim = 64;
  mcfg.mlp_hidden = 64;
  M3Model model(mcfg);

  const NetworkEstimate m3_est = RunM3(ft.topo(), wl.flows, cfg, model, opts);
  const NetworkEstimate path_est = RunNs3Path(ft.topo(), wl.flows, cfg, opts);
  const NetworkEstimate fluid_est = RunFlowSimOnly(ft.topo(), wl.flows, cfg, opts);

  EXPECT_EQ(m3_est.paths.size(), 5u);
  EXPECT_EQ(path_est.paths.size(), 5u);
  EXPECT_EQ(fluid_est.paths.size(), 5u);
  EXPECT_FALSE(m3_est.combined_pct.empty());
  EXPECT_GT(m3_est.CombinedP99(), 0.0);
  EXPECT_GT(path_est.CombinedP99(), 0.99);
  EXPECT_GT(m3_est.wall_seconds, 0.0);
  // Sampling identical seeds -> identical per-path fg counts across methods.
  for (std::size_t i = 0; i < 5; ++i) {
    for (int b = 0; b < kNumOutputBuckets; ++b) {
      EXPECT_DOUBLE_EQ(m3_est.paths[i].counts[static_cast<std::size_t>(b)],
                       path_est.paths[i].counts[static_cast<std::size_t>(b)]);
    }
  }
}

TEST(Estimator, GroundTruthSummaryMatchesRawPercentiles) {
  std::vector<FlowResult> results;
  for (int i = 1; i <= 100; ++i) {
    FlowResult r;
    r.size = 500;
    r.slowdown = static_cast<double>(i);
    results.push_back(r);
  }
  const NetworkEstimate gt = SummarizeGroundTruth(results);
  EXPECT_NEAR(gt.CombinedP99(), 99.0, 1.1);
  EXPECT_NEAR(gt.bucket_pct[0][49], 50.0, 1.1);
  EXPECT_DOUBLE_EQ(gt.total_counts[0], 100.0);
}

}  // namespace
}  // namespace m3
