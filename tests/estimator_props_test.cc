// Property-style tests of the estimation pipeline pieces that the main
// suites don't cover directly.
#include <gtest/gtest.h>

#include <cmath>

#include "core/aggregate.h"
#include "core/dataset.h"
#include "core/feature_map.h"
#include "core/scenario.h"
#include "util/stats.h"

namespace m3 {
namespace {

TEST(AggregateProps, WeightedPercentileMatchesUnweightedWhenUniform) {
  Rng rng(3);
  std::vector<double> plain;
  std::vector<std::pair<double, double>> weighted;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.Uniform(0.0, 100.0);
    plain.push_back(v);
    weighted.emplace_back(v, 1.0);
  }
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    // Nearest-rank weighted percentile vs interpolated percentile: allow a
    // one-rank tolerance band.
    const double w = WeightedPercentile(weighted, p);
    const double u = Percentile(plain, p);
    EXPECT_NEAR(w, u, 2.0) << "p" << p;
  }
}

TEST(AggregateProps, DoublingAllWeightsIsInvariant) {
  std::vector<std::pair<double, double>> w1{{1, 1}, {5, 2}, {9, 1}};
  std::vector<std::pair<double, double>> w2{{1, 2}, {5, 4}, {9, 2}};
  for (double p : {25.0, 50.0, 75.0, 99.0}) {
    EXPECT_DOUBLE_EQ(WeightedPercentile(w1, p), WeightedPercentile(w2, p));
  }
}

TEST(AggregateProps, AggregationIsPermutationInvariant) {
  Rng rng(7);
  std::vector<PathEstimate> paths(6);
  for (auto& pe : paths) {
    for (int b = 0; b < kNumOutputBuckets; ++b) {
      pe.counts[static_cast<std::size_t>(b)] = static_cast<double>(rng.NextBounded(50));
      double v = rng.Uniform(1.0, 3.0);
      for (int p = 0; p < kNumPercentiles; ++p) {
        v += rng.Uniform(0.0, 0.05);
        pe.pct[static_cast<std::size_t>(b)][static_cast<std::size_t>(p)] = v;
      }
    }
  }
  const auto fwd = AggregateBuckets(paths);
  std::vector<PathEstimate> reversed(paths.rbegin(), paths.rend());
  const auto rev = AggregateBuckets(reversed);
  for (int b = 0; b < kNumOutputBuckets; ++b) {
    ASSERT_EQ(fwd[static_cast<std::size_t>(b)].size(), rev[static_cast<std::size_t>(b)].size());
    for (std::size_t p = 0; p < fwd[static_cast<std::size_t>(b)].size(); ++p) {
      EXPECT_DOUBLE_EQ(fwd[static_cast<std::size_t>(b)][p], rev[static_cast<std::size_t>(b)][p]);
    }
  }
}

TEST(AggregateProps, CombinedDistributionBoundedByBucketExtremes) {
  std::array<std::vector<double>, kNumOutputBuckets> bucket_pct;
  std::array<double, kNumOutputBuckets> counts{};
  Rng rng(11);
  double lo = 1e18, hi = -1e18;
  for (int b = 0; b < kNumOutputBuckets; ++b) {
    double v = rng.Uniform(1.0, 5.0);
    for (int p = 0; p < kNumPercentiles; ++p) {
      v += rng.Uniform(0.0, 0.1);
      bucket_pct[static_cast<std::size_t>(b)].push_back(v);
    }
    counts[static_cast<std::size_t>(b)] = 10.0 + static_cast<double>(b);
    lo = std::min(lo, bucket_pct[static_cast<std::size_t>(b)].front());
    hi = std::max(hi, bucket_pct[static_cast<std::size_t>(b)].back());
  }
  const auto combined = CombineBuckets(bucket_pct, counts);
  EXPECT_GE(combined.front(), lo - 1e-9);
  EXPECT_LE(combined.back(), hi + 1e-9);
}

TEST(FeatureProps, FeatureMapInvariantToFlowOrder) {
  Rng rng(13);
  std::vector<SizedSlowdown> flows;
  for (int i = 0; i < 300; ++i) {
    flows.push_back({static_cast<Bytes>(100 + rng.NextBounded(100000)),
                     1.0 + rng.NextDouble() * 5.0});
  }
  const ml::Tensor a = FlattenFeature(BuildFeatureMap(flows));
  std::vector<SizedSlowdown> shuffled(flows.rbegin(), flows.rend());
  const ml::Tensor b = FlattenFeature(BuildFeatureMap(shuffled));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a.vec()[i], b.vec()[i]);
  }
}

TEST(FeatureProps, ScalingSlowdownsShiftsLogFeaturesUniformly) {
  std::vector<SizedSlowdown> flows;
  for (int i = 0; i < 100; ++i) flows.push_back({200, 2.0 + 0.01 * i});  // bucket 0
  std::vector<SizedSlowdown> scaled = flows;
  for (auto& f : scaled) f.slowdown *= 2.0;
  const ml::Tensor a = FlattenFeature(BuildFeatureMap(flows));
  const ml::Tensor b = FlattenFeature(BuildFeatureMap(scaled));
  // Log-space: percentile entries of the populated bucket shift by log(2).
  for (int p = 0; p < kNumPercentiles; ++p) {
    EXPECT_NEAR(b.at(0, p) - a.at(0, p), std::log(2.0), 1e-4);
  }
  // Count entries are unchanged.
  for (int c = 0; c < kNumSizeBuckets; ++c) {
    EXPECT_FLOAT_EQ(a.at(0, 1000 + c), b.at(0, 1000 + c));
  }
}

TEST(ScenarioProps, BackgroundSpansNeverCoverFullPath) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    const SyntheticSpec spec = SyntheticSpec::Sample(rng, 100);
    const PathScenario sc = BuildSyntheticScenario(spec);
    for (std::size_t i = 0; i < sc.flows.size(); ++i) {
      if (sc.is_fg[i]) {
        EXPECT_EQ(sc.entry_hop[i], 0);
        EXPECT_EQ(sc.exit_hop[i], sc.num_links);
      } else {
        EXPECT_FALSE(sc.entry_hop[i] == 0 && sc.exit_hop[i] == sc.num_links);
        EXPECT_LT(sc.entry_hop[i], sc.exit_hop[i]);
        EXPECT_GE(sc.entry_hop[i], 0);
        EXPECT_LE(sc.exit_hop[i], sc.num_links);
      }
    }
  }
}

TEST(ScenarioProps, FeatureExtractionAssignsBgToCoveredLinksOnly) {
  SyntheticSpec spec;
  spec.num_links = 4;
  spec.num_fg = 50;
  spec.bg_ratio = 1.0;
  spec.seed = 23;
  const PathScenario sc = BuildSyntheticScenario(spec);
  const auto fluid = RunPathFlowSim(sc);
  const ScenarioFeatures feats = ExtractFeatures(sc, fluid);

  // Reconstruct expected per-link bg counts from the scenario and compare
  // with the count channel of each bg feature row (log1p(count)/10).
  std::array<int, 4> expected{};
  for (std::size_t i = 0; i < sc.flows.size(); ++i) {
    if (sc.is_fg[i]) continue;
    for (int h = sc.entry_hop[i]; h < sc.exit_hop[i]; ++h) expected[static_cast<std::size_t>(h)]++;
  }
  for (int h = 0; h < 4; ++h) {
    double count_feature_sum = 0.0;
    for (int c = 0; c < kNumSizeBuckets; ++c) {
      count_feature_sum +=
          std::expm1(static_cast<double>(feats.bg_seq.at(h, 1000 + c)) * 10.0);
    }
    EXPECT_NEAR(count_feature_sum, static_cast<double>(expected[static_cast<std::size_t>(h)]),
                0.5 + 0.01 * expected[static_cast<std::size_t>(h)]);
  }
}

}  // namespace
}  // namespace m3
