#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "flowsim/flowsim.h"
#include "topo/parking_lot.h"
#include "util/rng.h"

namespace m3 {
namespace {

constexpr double kEff = 1000.0 / 1048.0;  // goodput factor for mtu=1000, hdr=48

// Single host pair on a single link.
struct SingleLink {
  Topology topo;
  NodeId a, b;
  LinkId ab;

  explicit SingleLink(double gbps = 10.0, Ns delay = 1000) {
    a = topo.AddNode(NodeKind::kHost);
    b = topo.AddNode(NodeKind::kHost);
    ab = topo.AddLink(a, b, GbpsToBpns(gbps), delay);
    topo.AddLink(b, a, GbpsToBpns(gbps), delay);
  }

  Flow MakeFlow(FlowId id, Bytes size, Ns arrival) const {
    Flow f;
    f.id = id;
    f.src = a;
    f.dst = b;
    f.size = size;
    f.arrival = arrival;
    f.path = {ab};
    return f;
  }
};

TEST(FlowSim, UnloadedFlowHasSlowdownExactlyOne) {
  SingleLink net;
  const auto res = RunFlowSim(net.topo, {net.MakeFlow(0, 100000, 0)});
  ASSERT_EQ(res.size(), 1u);
  EXPECT_NEAR(res[0].slowdown, 1.0, 1e-6);
  EXPECT_EQ(res[0].fct, res[0].ideal_fct);
}

TEST(FlowSim, TwoSimultaneousFlowsShareFairly) {
  SingleLink net;
  const Bytes size = 1 * kMB;
  const auto res = RunFlowSim(net.topo, {net.MakeFlow(0, size, 0), net.MakeFlow(1, size, 0)});
  // Both flows get half rate the whole time: slowdown ~= 2.
  EXPECT_NEAR(res[0].slowdown, 2.0, 0.01);
  EXPECT_NEAR(res[1].slowdown, 2.0, 0.01);
}

TEST(FlowSim, ShortFlowUnaffectedAfterLongFlowCompletes) {
  SingleLink net;
  // Long flow finishes at ~ 1MB / eff-rate; short flow arrives well after.
  const Ns long_done = static_cast<Ns>(1e6 / (GbpsToBpns(10.0) * kEff));
  const auto res = RunFlowSim(
      net.topo, {net.MakeFlow(0, 1 * kMB, 0), net.MakeFlow(1, 10000, long_done + kMs)});
  EXPECT_NEAR(res[1].slowdown, 1.0, 1e-6);
}

TEST(FlowSim, SequentialSharingIsPartial) {
  SingleLink net;
  // Flow 1 arrives when flow 0 is half done: flow 0's slowdown is 1.5-ish.
  const Bytes size = 1 * kMB;
  const double rate = GbpsToBpns(10.0) * kEff;
  const Ns half = static_cast<Ns>(static_cast<double>(size) / rate / 2.0);
  const auto res = RunFlowSim(net.topo, {net.MakeFlow(0, size, 0), net.MakeFlow(1, size, half)});
  EXPECT_GT(res[0].slowdown, 1.3);
  EXPECT_LT(res[0].slowdown, 1.7);
  // Flow 1 shares for a while then runs alone.
  EXPECT_GT(res[1].slowdown, 1.2);
  EXPECT_LT(res[1].slowdown, 1.8);
}

TEST(FlowSim, ParkingLotMaxMinAllocation) {
  // Classic parking lot: one long flow over both links, one local flow per
  // link. Max-min gives every flow half of each 10G link.
  ParkingLot pl(2, GbpsToBpns(10), 1000);
  const NodeId src_long = pl.AttachHost(0, GbpsToBpns(40), 1);
  const NodeId dst_long = pl.AttachHost(2, GbpsToBpns(40), 2);
  const NodeId src_a = pl.AttachHost(0, GbpsToBpns(40), 3);
  const NodeId dst_a = pl.AttachHost(1, GbpsToBpns(40), 4);
  const NodeId src_b = pl.AttachHost(1, GbpsToBpns(40), 5);
  const NodeId dst_b = pl.AttachHost(2, GbpsToBpns(40), 6);

  const Bytes size = 4 * kMB;
  Flow f0{0, src_long, dst_long, size, 0, pl.RouteBetween(src_long, 0, dst_long, 2)};
  Flow f1{1, src_a, dst_a, size, 0, pl.RouteBetween(src_a, 0, dst_a, 1)};
  Flow f2{2, src_b, dst_b, size, 0, pl.RouteBetween(src_b, 1, dst_b, 2)};
  const auto res = RunFlowSim(pl.topo(), {f0, f1, f2});

  // All three see ~5G bottleneck (half of a 10G link) while sharing; local
  // flows then finish together and the long flow ends at the same time, so
  // all slowdowns ~= 2 relative to a 10G ideal.
  for (const auto& r : res) EXPECT_NEAR(r.slowdown, 2.0, 0.05);
}

TEST(FlowSim, BottleneckIsRespectedOnHeterogeneousPath) {
  // 40G access into a 10G path link: a single flow is limited by 10G.
  ParkingLot pl(1, GbpsToBpns(10), 1000);
  const NodeId a = pl.AttachHost(0, GbpsToBpns(40), 1);
  const NodeId b = pl.AttachHost(1, GbpsToBpns(40), 2);
  Flow f{0, a, b, 1 * kMB, 0, pl.RouteBetween(a, 0, b, 1)};
  const auto res = RunFlowSim(pl.topo(), {f});
  EXPECT_NEAR(res[0].slowdown, 1.0, 1e-6);
  const double goodput = static_cast<double>(f.size) / static_cast<double>(res[0].fct);
  EXPECT_NEAR(goodput / (GbpsToBpns(10.0) * kEff), 1.0, 0.02);
}

TEST(FlowSim, ManyFlowsNPlusOneSlowdown) {
  // n simultaneous equal flows on one link each see slowdown ~= n.
  for (int n : {4, 8, 16}) {
    SingleLink net;
    std::vector<Flow> flows;
    for (int i = 0; i < n; ++i) flows.push_back(net.MakeFlow(i, 500000, 0));
    const auto res = RunFlowSim(net.topo, flows);
    for (const auto& r : res) EXPECT_NEAR(r.slowdown, static_cast<double>(n), 0.05 * n);
  }
}

TEST(FlowSim, ConservationOfWork) {
  // Total bytes / makespan cannot exceed effective link capacity, and with
  // a backlogged link should be close to it.
  SingleLink net;
  std::vector<Flow> flows;
  Rng rng(5);
  Bytes total = 0;
  for (int i = 0; i < 200; ++i) {
    const Bytes size = 1000 + static_cast<Bytes>(rng.NextBounded(100000));
    flows.push_back(net.MakeFlow(i, size, static_cast<Ns>(rng.NextBounded(100 * kUs))));
    total += size;
  }
  const auto res = RunFlowSim(net.topo, flows);
  Ns makespan = 0;
  for (std::size_t i = 0; i < res.size(); ++i) {
    makespan = std::max(makespan, flows[i].arrival + res[i].fct);
  }
  const double throughput = static_cast<double>(total) / static_cast<double>(makespan);
  const double cap = GbpsToBpns(10.0) * kEff;
  EXPECT_LE(throughput, cap * 1.001);
  EXPECT_GT(throughput, cap * 0.85);  // heavily backlogged
}

TEST(FlowSim, SlowdownNeverBelowOne) {
  SingleLink net;
  std::vector<Flow> flows;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    flows.push_back(net.MakeFlow(i, 100 + static_cast<Bytes>(rng.NextBounded(50000)),
                                 static_cast<Ns>(rng.NextBounded(kMs))));
  }
  for (const auto& r : RunFlowSim(net.topo, flows)) {
    EXPECT_GE(r.slowdown, 1.0 - 1e-9);
  }
}

TEST(FlowSim, ResultsAlignWithInputOrder) {
  SingleLink net;
  // Arrivals deliberately out of input order.
  std::vector<Flow> flows{net.MakeFlow(0, 5000, 2 * kMs), net.MakeFlow(1, 5000, 0)};
  const auto res = RunFlowSim(net.topo, flows);
  EXPECT_EQ(res[0].id, 0);
  EXPECT_EQ(res[1].id, 1);
  EXPECT_EQ(res[0].size, 5000);
}

TEST(FlowSim, RejectsFlowsWithoutPath) {
  SingleLink net;
  Flow f = net.MakeFlow(0, 1000, 0);
  f.path.clear();
  EXPECT_THROW(RunFlowSim(net.topo, {f}), std::invalid_argument);
}

}  // namespace
}  // namespace m3
