// Resilience layer tests: Status/StatusOr semantics, the deterministic
// fault-injection registry, input validators, per-path fault isolation in
// the estimator (every degrade class), checkpoint load classification, and
// the no-fault bitwise-determinism guarantee.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "core/estimator.h"
#include "core/validate.h"
#include "topo/fat_tree.h"
#include "util/fault.h"
#include "util/status.h"
#include "workload/generator.h"
#include "workload/size_dist.h"
#include "workload/trace_io.h"

namespace m3 {
namespace {

// Every test that arms faults must leave the registry clean; a leaked armed
// site would poison unrelated tests in this binary.
class FaultGuard {
 public:
  FaultGuard() { FaultRegistry::Instance().Reset(); }
  ~FaultGuard() { FaultRegistry::Instance().Reset(); }
};

// ------------------------------------------------------------------ Status --

TEST(Status, CodesAndMessages) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::Ok().code(), StatusCode::kOk);

  const Status s = Status::InvalidArgument("flows[3].size: -1 (must be > 0)");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("flows[3].size"), std::string::npos);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: flows[3].size: -1 (must be > 0)");
}

TEST(Status, AnnotatePrependsContextAndKeepsCode) {
  const Status s = Status::DataLoss("crc mismatch").Annotate("loading ckpt");
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(s.message(), "loading ckpt: crc mismatch");
}

TEST(Status, EveryCodeHasAName) {
  for (int c = 0; c < kNumStatusCodes; ++c) {
    const char* name = StatusCodeName(static_cast<StatusCode>(c));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "");
  }
}

TEST(StatusOr, ValueAndErrorPaths) {
  StatusOr<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);

  StatusOr<int> err = Status::NotFound("no such file");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, MoveOutValue) {
  StatusOr<std::vector<int>> v = std::vector<int>{1, 2, 3};
  const std::vector<int> out = std::move(v).value();
  EXPECT_EQ(out.size(), 3u);
}

// ---------------------------------------------------------- fault registry --

TEST(FaultRegistry, DisarmedSitesAreFree) {
  FaultGuard guard;
  EXPECT_FALSE(FaultRegistry::Instance().any_armed());
  EXPECT_NO_THROW(FaultPointThrow("estimator/path_forward"));
  EXPECT_FALSE(FaultPointNan("model/forward"));
  // Hits are not even counted while disarmed.
  EXPECT_EQ(FaultRegistry::Instance().hits("estimator/path_forward"), 0u);
}

TEST(FaultRegistry, FireWindowIsExact) {
  FaultGuard guard;
  FaultSpec spec;
  spec.fire_from = 2;
  spec.fire_count = 2;
  FaultRegistry::Instance().Arm("site/a", spec);
  EXPECT_NO_THROW(FaultPointThrow("site/a"));   // hit 1
  EXPECT_THROW(FaultPointThrow("site/a"), FaultInjected);  // hit 2
  EXPECT_THROW(FaultPointThrow("site/a"), FaultInjected);  // hit 3
  EXPECT_NO_THROW(FaultPointThrow("site/a"));   // hit 4: healed
  EXPECT_EQ(FaultRegistry::Instance().hits("site/a"), 4u);
}

TEST(FaultRegistry, NanModeFiresAtNanPointsOnly) {
  FaultGuard guard;
  FaultSpec spec;
  spec.mode = FaultMode::kNan;
  FaultRegistry::Instance().Arm("site/nan", spec);
  EXPECT_TRUE(FaultPointNan("site/nan"));
  // A throw-type point at a nan-armed site must not throw (mode mismatch is
  // ignored, not escalated).
  EXPECT_NO_THROW(FaultPointThrow("site/nan"));
}

TEST(FaultRegistry, ResetDisarmsAndZeroesCounters) {
  FaultGuard guard;
  FaultRegistry::Instance().Arm("site/b");
  EXPECT_THROW(FaultPointThrow("site/b"), FaultInjected);
  FaultRegistry::Instance().Reset();
  EXPECT_FALSE(FaultRegistry::Instance().any_armed());
  EXPECT_NO_THROW(FaultPointThrow("site/b"));
  EXPECT_EQ(FaultRegistry::Instance().hits("site/b"), 0u);
}

TEST(FaultRegistry, ArmFromStringParsesWindowSyntax) {
  FaultGuard guard;
  const Status st =
      FaultRegistry::Instance().ArmFromString("site/c=throw@3x1,site/d=nan");
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_NO_THROW(FaultPointThrow("site/c"));  // hit 1
  EXPECT_NO_THROW(FaultPointThrow("site/c"));  // hit 2
  EXPECT_THROW(FaultPointThrow("site/c"), FaultInjected);  // hit 3 fires
  EXPECT_NO_THROW(FaultPointThrow("site/c"));  // x1: healed
  EXPECT_TRUE(FaultPointNan("site/d"));
  EXPECT_TRUE(FaultPointNan("site/d"));  // unlimited
}

TEST(FaultRegistry, ArmFromStringRejectsMalformedEntries) {
  FaultGuard guard;
  for (const char* bad :
       {"site", "site=", "site=explode", "site=throw@zero", "site=throw@0",
        "site=throwx-3", "=throw"}) {
    const Status st = FaultRegistry::Instance().ArmFromString(bad);
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << bad;
    FaultRegistry::Instance().Reset();
  }
}

// -------------------------------------------------------------- validators --

TEST(Validate, TopologyRejectsBadLinks) {
  EXPECT_EQ(ValidateTopology(Topology()).code(), StatusCode::kInvalidArgument);

  Topology t;
  const NodeId a = t.AddNode(NodeKind::kHost);
  const NodeId b = t.AddNode(NodeKind::kHost);
  t.AddDuplexLink(a, b, /*rate=*/0.0, /*delay=*/1000);  // zero-rate link
  const Status st = ValidateTopology(t);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("rate"), std::string::npos) << st.ToString();
}

TEST(Validate, FlowsRejectBadFields) {
  const FatTree ft(FatTreeConfig::Small(1.0));
  auto mk = [&](long long size, Ns arrival) {
    Flow f;
    f.id = 0;
    f.src = ft.host(0);
    f.dst = ft.host(1);
    f.size = size;
    f.arrival = arrival;
    f.path = ft.RouteBetween(0, 1, 0);
    return f;
  };

  EXPECT_EQ(ValidateFlows(ft.topo(), {}).code(), StatusCode::kInvalidArgument);

  {
    const Status st = ValidateFlows(ft.topo(), {mk(0, 0)});
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(st.message().find("size"), std::string::npos) << st.ToString();
    EXPECT_NE(st.message().find("[0]"), std::string::npos) << st.ToString();
  }
  {
    // Non-monotone arrivals: index of the offender must be named.
    const Status st = ValidateFlows(ft.topo(), {mk(1000, 500), mk(1000, 100)});
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(st.message().find("[1]"), std::string::npos) << st.ToString();
    EXPECT_NE(st.message().find("arrival"), std::string::npos) << st.ToString();
  }
  {
    Flow f = mk(1000, 0);
    f.dst = f.src;
    EXPECT_EQ(ValidateFlows(ft.topo(), {f}).code(), StatusCode::kInvalidArgument);
  }
  {
    Flow f = mk(1000, 0);
    f.priority = kNumPriorities;  // one past the last class
    EXPECT_EQ(ValidateFlows(ft.topo(), {f}).code(), StatusCode::kInvalidArgument);
  }
  {
    Flow f = mk(1000, 0);
    f.path = {static_cast<LinkId>(ft.topo().num_links() + 7)};
    EXPECT_EQ(ValidateFlows(ft.topo(), {f}).code(), StatusCode::kInvalidArgument);
  }
}

TEST(Validate, NetConfigRejectsInsaneKnobs) {
  {
    NetConfig cfg;
    cfg.init_window = 0;
    EXPECT_EQ(ValidateNetConfig(cfg).code(), StatusCode::kInvalidArgument);
  }
  {
    NetConfig cfg;
    cfg.buffer = 0;
    EXPECT_EQ(ValidateNetConfig(cfg).code(), StatusCode::kInvalidArgument);
  }
  {
    NetConfig cfg;
    cfg.dcqcn_kmin = 100 * kKB;
    cfg.dcqcn_kmax = 10 * kKB;  // inverted thresholds
    const Status st = ValidateNetConfig(cfg);
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(st.message().find("dcqcn"), std::string::npos) << st.ToString();
  }
  EXPECT_TRUE(ValidateNetConfig(NetConfig()).ok());
}

TEST(Validate, M3OptionsRejectBadKnobs) {
  {
    M3Options opts;
    opts.num_paths = 0;
    EXPECT_EQ(ValidateM3Options(opts).code(), StatusCode::kInvalidArgument);
  }
  {
    M3Options opts;
    opts.deadline_seconds = -1.0;
    EXPECT_EQ(ValidateM3Options(opts).code(), StatusCode::kInvalidArgument);
  }
  {
    M3Options opts;
    opts.max_attempts = 0;
    EXPECT_EQ(ValidateM3Options(opts).code(), StatusCode::kInvalidArgument);
  }
  EXPECT_TRUE(ValidateM3Options(M3Options()).ok());
}

TEST(Validate, DatasetOptionsRejectBadKnobs) {
  DatasetOptions opts;
  opts.num_scenarios = 0;
  EXPECT_EQ(ValidateDatasetOptions(opts).code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(MakeSyntheticDatasetOr(opts).ok());
  EXPECT_THROW(MakeSyntheticDataset(opts), std::runtime_error);
}

// ------------------------------------------------ estimator fault isolation --
//
// All fault-driven estimator tests run single-threaded: the registry's hit
// counters are global per site, so which *path* observes the Nth hit is
// scheduling-dependent under parallelism. With one thread the mapping from
// hit index to path index is exact and the tests are deterministic.

struct QueryFixture {
  FatTree ft{FatTreeConfig::Small(2.0)};
  std::vector<Flow> flows;
  NetConfig cfg;
  M3Model model;
  M3Options opts;

  QueryFixture() : model(SmallModel()) {
    const auto tm = TrafficMatrix::MatrixB(ft.num_racks(), ft.config().racks_per_pod);
    const auto sizes = MakeWebServer();
    WorkloadSpec wspec;
    wspec.num_flows = 400;
    wspec.seed = 3;
    flows = GenerateWorkload(ft, tm, *sizes, wspec).flows;
    opts.num_paths = 4;
    opts.num_threads = 1;
  }

  static M3ModelConfig SmallModel() {
    M3ModelConfig mcfg;
    mcfg.d_model = 32;
    mcfg.num_layers = 1;
    mcfg.ff_dim = 64;
    mcfg.mlp_hidden = 64;
    return mcfg;
  }

  NetworkEstimate Run() { return RunM3(ft.topo(), flows, cfg, model, opts); }
};

void ExpectPopulated(const NetworkEstimate& est) {
  ASSERT_FALSE(est.combined_pct.empty());
  for (double v : est.combined_pct) {
    EXPECT_TRUE(std::isfinite(v));
    // flowSim values can sit a few ulps below 1.0 (fct/ideal rounding); the
    // guard deliberately preserves them.
    EXPECT_GE(v, 1.0 - 1e-9);
  }
}

TEST(EstimatorResilience, ValidationRejectionShortCircuits) {
  QueryFixture q;
  q.flows[5].size = -4;
  const NetworkEstimate est = q.Run();
  EXPECT_EQ(est.status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(est.status.message().find("[5]"), std::string::npos) << est.status.ToString();
  EXPECT_EQ(est.degradation.errors_validation, 1);
  EXPECT_TRUE(est.paths.empty());  // no compute ran
}

TEST(EstimatorResilience, ThrowingWorkerDegradesToFlowSim) {
  QueryFixture q;
  FaultGuard guard;
  // Path 0's primary estimator throws on both attempts; the flowSim
  // fallback (a different fault site) succeeds.
  FaultSpec spec;
  spec.fire_count = 2;
  FaultRegistry::Instance().Arm("estimator/path_forward", spec);

  const NetworkEstimate est = q.Run();
  ExpectPopulated(est);
  EXPECT_EQ(est.status.code(), StatusCode::kDegraded) << est.status.ToString();
  EXPECT_EQ(est.degradation.paths_ok, 3);
  EXPECT_EQ(est.degradation.paths_degraded, 1);
  EXPECT_EQ(est.degradation.paths_dropped, 0);
  EXPECT_EQ(est.degradation.paths_retried, 1);
  EXPECT_EQ(est.degradation.errors_exception, 2);
  EXPECT_NE(est.degradation.first_error.find("path 0"), std::string::npos)
      << est.degradation.first_error;
  EXPECT_EQ(est.paths.size(), 4u);
}

TEST(EstimatorResilience, RetryThenSuccessMatchesNoFaultRunBitwise) {
  QueryFixture q;
  const NetworkEstimate clean = q.Run();

  FaultGuard guard;
  FaultSpec spec;
  spec.fire_count = 1;  // first attempt of path 0 fails, retry succeeds
  FaultRegistry::Instance().Arm("estimator/path_forward", spec);
  const NetworkEstimate retried = q.Run();

  EXPECT_EQ(retried.status.code(), StatusCode::kOk) << retried.status.ToString();
  EXPECT_EQ(retried.degradation.paths_retried, 1);
  EXPECT_EQ(retried.degradation.paths_ok, 4);
  EXPECT_EQ(retried.degradation.errors_exception, 1);
  ASSERT_EQ(retried.combined_pct.size(), clean.combined_pct.size());
  for (std::size_t i = 0; i < clean.combined_pct.size(); ++i) {
    EXPECT_EQ(retried.combined_pct[i], clean.combined_pct[i]) << i;
  }
}

TEST(EstimatorResilience, NanForwardIsCountedAndContained) {
  QueryFixture q;
  FaultGuard guard;
  // Model forward emits all-NaN raw outputs on path 0's two attempts.
  FaultSpec spec;
  spec.mode = FaultMode::kNan;
  spec.fire_count = 2;
  FaultRegistry::Instance().Arm("model/forward", spec);

  const NetworkEstimate est = q.Run();
  ExpectPopulated(est);  // the NaN never reaches combined_pct
  EXPECT_EQ(est.status.code(), StatusCode::kDegraded) << est.status.ToString();
  EXPECT_EQ(est.degradation.errors_nonfinite, 2);
  EXPECT_EQ(est.degradation.paths_degraded, 1);
  EXPECT_NE(est.degradation.first_error.find("DATA_LOSS"), std::string::npos)
      << est.degradation.first_error;
}

TEST(EstimatorResilience, FallbackFaultDropsPathAndReweights) {
  QueryFixture q;
  FaultGuard guard;
  // Primary flowSim *and* the fallback share the estimator/path_flowsim
  // site: 3 firings exhaust primary(1) + retry(2) + fallback(3) for path 0,
  // which is then dropped; aggregation reweights across the survivors.
  FaultSpec spec;
  spec.fire_count = 3;
  FaultRegistry::Instance().Arm("estimator/path_flowsim", spec);

  const NetworkEstimate est = q.Run();
  ExpectPopulated(est);
  EXPECT_EQ(est.status.code(), StatusCode::kDegraded);
  EXPECT_EQ(est.degradation.paths_dropped, 1);
  EXPECT_EQ(est.degradation.paths_ok, 3);
  EXPECT_EQ(est.degradation.errors_exception, 3);
  // The dropped path contributes zero weight, not zero values.
  ASSERT_EQ(est.paths.size(), 4u);
  double dropped_weight = 0.0;
  for (double c : est.paths[0].counts) dropped_weight += c;
  EXPECT_EQ(dropped_weight, 0.0);
}

TEST(EstimatorResilience, StrictModeSurfacesFirstError) {
  QueryFixture q;
  q.opts.strict = true;
  FaultGuard guard;
  FaultRegistry::Instance().Arm("estimator/path_forward");  // always fires

  const NetworkEstimate est = q.Run();
  EXPECT_FALSE(est.status.ok());
  EXPECT_EQ(est.status.code(), StatusCode::kInternal) << est.status.ToString();
  EXPECT_NE(est.status.message().find("strict"), std::string::npos)
      << est.status.ToString();
  EXPECT_GE(est.degradation.paths_dropped, 1);
}

TEST(EstimatorResilience, TinyDeadlineReturnsPartialEstimate) {
  QueryFixture q;
  q.opts.num_paths = 8;
  q.opts.deadline_seconds = 1e-9;  // expires before the first path
  const NetworkEstimate est = q.Run();
  EXPECT_EQ(est.status.code(), StatusCode::kDeadlineExceeded) << est.status.ToString();
  EXPECT_GT(est.degradation.errors_deadline, 0);
  EXPECT_EQ(est.degradation.paths_ok + est.degradation.paths_degraded +
                est.degradation.paths_dropped,
            8);
}

TEST(EstimatorResilience, ArmedButNeverFiringRegistryIsBitwiseTransparent) {
  QueryFixture q;
  const NetworkEstimate clean = q.Run();

  FaultGuard guard;
  FaultSpec spec;
  spec.fire_from = 1000000;  // armed, counts hits, never fires
  FaultRegistry::Instance().Arm("estimator/path_forward", spec);
  FaultRegistry::Instance().Arm("model/forward", spec);
  const NetworkEstimate armed = q.Run();

  EXPECT_TRUE(armed.status.ok());
  EXPECT_EQ(armed.degradation.paths_ok, 4);
  ASSERT_EQ(armed.combined_pct.size(), clean.combined_pct.size());
  for (std::size_t i = 0; i < clean.combined_pct.size(); ++i) {
    EXPECT_EQ(armed.combined_pct[i], clean.combined_pct[i]) << i;
  }
  EXPECT_GT(FaultRegistry::Instance().hits("estimator/path_forward"), 0u);
}

TEST(EstimatorResilience, NoFaultRunReportsFullQuality) {
  QueryFixture q;
  const NetworkEstimate est = q.Run();
  EXPECT_TRUE(est.status.ok()) << est.status.ToString();
  EXPECT_EQ(est.degradation.paths_ok, 4);
  EXPECT_EQ(est.degradation.paths_retried, 0);
  EXPECT_EQ(est.degradation.paths_degraded, 0);
  EXPECT_EQ(est.degradation.paths_dropped, 0);
  EXPECT_EQ(est.degradation.clamped_values, 0);
  EXPECT_FALSE(est.degradation.Degraded());
  EXPECT_TRUE(est.degradation.first_error.empty());
}

TEST(EstimatorResilience, FlowSimOnlyDegradationFloorDropsOnFault) {
  // RunFlowSimOnly has no fallback below it; a persistent flowSim fault
  // drops the path rather than looping.
  QueryFixture q;
  FaultGuard guard;
  FaultSpec spec;
  spec.fire_count = 2;  // both primary attempts of path 0
  FaultRegistry::Instance().Arm("estimator/path_flowsim", spec);
  const NetworkEstimate est = RunFlowSimOnly(q.ft.topo(), q.flows, q.cfg, q.opts);
  ExpectPopulated(est);
  EXPECT_EQ(est.status.code(), StatusCode::kDegraded);
  EXPECT_EQ(est.degradation.paths_dropped, 1);
  EXPECT_EQ(est.degradation.paths_ok, 3);
}

// --------------------------------------------------------- aggregation guard --

TEST(AggregationGuard, ClampsNonFiniteAndNonPositiveValues) {
  std::vector<PathEstimate> paths(2);
  for (auto& pe : paths) {
    pe.counts[0] = 10.0;
    for (auto& row : pe.pct) row.fill(2.0);
  }
  paths[0].pct[0][4] = std::nan("");
  paths[0].pct[0][5] = std::numeric_limits<double>::infinity();
  paths[0].pct[0][6] = -0.25;  // physically impossible
  // A slowdown a few ulps below 1.0 is legitimate fct/ideal rounding and
  // must pass through untouched (bitwise reproducibility of clean runs).
  const double almost_one = std::nextafter(1.0, 0.0);
  paths[0].pct[0][7] = almost_one;
  // Bucket 3 has zero count in both paths: its values are dead weight and
  // must not be touched or counted.
  paths[1].pct[3][0] = std::nan("");

  EXPECT_EQ(ClampPathEstimates(paths), 3);
  EXPECT_EQ(paths[0].pct[0][4], 1.0);
  EXPECT_EQ(paths[0].pct[0][5], 1.0);
  EXPECT_EQ(paths[0].pct[0][6], 1.0);
  EXPECT_EQ(paths[0].pct[0][7], almost_one);
  EXPECT_TRUE(std::isnan(paths[1].pct[3][0]));  // unpopulated bucket untouched
  EXPECT_EQ(ClampPathEstimates(paths), 0);  // idempotent
}

// ----------------------------------------------------------- checkpoint load --

TEST(CheckpointResilience, TryLoadClassifiesFailures) {
  M3Model model(QueryFixture::SmallModel());
  const std::string dir = ::testing::TempDir() + "/resilience_ckpt";
  const std::string path = dir + "/model.ckpt";

  // Missing file -> kNotFound.
  {
    const auto r = model.TryLoad(dir + "/never_written.ckpt");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kNotFound) << r.status().ToString();
  }

  model.Save(path);
  ASSERT_TRUE(model.TryLoad(path).ok());

  // Flip one payload byte -> CRC mismatch -> kDataLoss.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(64);
    char b = 0;
    f.seekg(64);
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x5a);
    f.seekp(64);
    f.write(&b, 1);
    f.close();
    const auto r = model.TryLoad(path);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kDataLoss) << r.status().ToString();
    EXPECT_NE(r.status().message().find(path), std::string::npos)
        << r.status().ToString();
  }

  // A model compiled with different dims -> kInvalidArgument, with the
  // mismatched shapes named.
  {
    M3Model good(QueryFixture::SmallModel());
    good.Save(path);
    M3ModelConfig other = QueryFixture::SmallModel();
    other.d_model = 48;
    M3Model wrong(other);
    const auto r = wrong.TryLoad(path);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << r.status().ToString();
  }

  // Injected fault at the load boundary is catchable as CheckpointError.
  {
    FaultGuard guard;
    FaultRegistry::Instance().Arm("checkpoint/load");
    EXPECT_THROW(model.Load(path), std::runtime_error);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace m3
