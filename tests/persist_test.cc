// Durable-cache persistence tests (serve/persist.h): segment round-trips,
// corruption tolerance at every truncation offset and under single-bit
// flips (mirroring checkpoint_test.cc's every-offset discipline), hostile
// length fields, directory locking, fault-injected disk failures, and the
// service-level warm-restart invariant — a fault-free persisted hit is
// bitwise identical to a recompute.
//
// The PersistConcurrency tests are part of the designated TSan workload
// (tools/check.sh runs this binary under -fsanitize=thread).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/persist.h"
#include "serve/service.h"
#include "serve/wire.h"
#include "topo/fat_tree.h"
#include "util/fault.h"
#include "util/hash.h"
#include "workload/generator.h"
#include "workload/size_dist.h"

namespace m3::serve {
namespace {

namespace fs = std::filesystem;

class FaultGuard {
 public:
  FaultGuard() { FaultRegistry::Instance().Reset(); }
  ~FaultGuard() { FaultRegistry::Instance().Reset(); }
};

// Fresh scratch directory per test so segment sequences don't collide.
std::string ScratchDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/m3_persist_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  return std::string(std::istreambuf_iterator<char>(is), {});
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

Hash128 K(std::uint64_t hi, std::uint64_t lo) { return Hash128{hi, lo}; }

struct Entry {
  CacheKind kind;
  Hash128 digest;
  Hash128 key;
  std::string value;
};

std::vector<Entry> SampleEntries(int n) {
  std::vector<Entry> es;
  for (int i = 0; i < n; ++i) {
    Entry e;
    e.kind = i % 2 == 0 ? CacheKind::kQuery : CacheKind::kPath;
    e.digest = K(7, 7);
    e.key = K(100 + static_cast<std::uint64_t>(i), 200);
    e.value = "value-" + std::to_string(i) + std::string(i, static_cast<char>('a' + i));
    es.push_back(std::move(e));
  }
  return es;
}

PersistOptions Opts(const std::string& dir) {
  PersistOptions o;
  o.dir = dir;
  o.flush_interval_seconds = 60.0;  // tests drive flushes explicitly
  return o;
}

// Replays everything in `dir`, asserting en route that every record the
// reader *delivers* is bitwise one of `truth` (keyed by cache key) — the
// "never serve a corrupt entry" half of the recovery contract.
struct Replay {
  std::vector<Entry> loaded;
  PersistStats stats;
};

Replay RecoverAll(const std::string& dir,
                  const std::map<std::pair<std::uint64_t, std::uint64_t>, Entry>* truth) {
  CachePersister p(Opts(dir));
  EXPECT_TRUE(p.Start().ok());
  Replay r;
  p.Recover([&](CacheKind kind, const Hash128& digest, const Hash128& key,
                const std::string& value) {
    if (truth != nullptr) {
      auto it = truth->find({key.hi, key.lo});
      // Framing + CRC + value-hash all passed: the record must be one we
      // wrote, byte for byte.
      EXPECT_TRUE(it != truth->end()) << "recovered a record that was never written";
      if (it != truth->end()) {
        EXPECT_EQ(value, it->second.value);
        EXPECT_EQ(static_cast<int>(kind), static_cast<int>(it->second.kind));
        EXPECT_EQ(digest, it->second.digest);
      }
    }
    r.loaded.push_back(Entry{kind, digest, key, value});
    return CachePersister::Recovered::kLoaded;
  });
  r.stats = p.stats();
  p.Stop();
  return r;
}

std::map<std::pair<std::uint64_t, std::uint64_t>, Entry> Truth(
    const std::vector<Entry>& es) {
  std::map<std::pair<std::uint64_t, std::uint64_t>, Entry> m;
  for (const Entry& e : es) m[{e.key.hi, e.key.lo}] = e;
  return m;
}

// Writes `es` as one (or more) segments and returns the sole segment path.
std::string WriteOneSegment(const std::string& dir, const std::vector<Entry>& es) {
  CachePersister p(Opts(dir));
  EXPECT_TRUE(p.Start().ok());
  for (const Entry& e : es) p.Enqueue(e.kind, e.digest, e.key, e.value);
  EXPECT_TRUE(p.FlushNow().ok());
  p.Stop();
  std::string seg;
  int count = 0;
  for (const auto& de : fs::directory_iterator(dir)) {
    if (de.path().extension() == ".m3c") {
      seg = de.path().string();
      ++count;
    }
  }
  EXPECT_EQ(count, 1) << "expected exactly one segment";
  return seg;
}

// ----------------------------------------------------------- dir locking --

TEST(Persist, AcquireCreatesDirectoryAndWritesLock) {
  const std::string dir = ScratchDir("acquire") + "/nested/cache";
  ASSERT_FALSE(fs::exists(dir));
  CacheDirLock lock;
  ASSERT_TRUE(AcquireCacheDir(dir, &lock).ok());
  EXPECT_TRUE(lock.held());
  EXPECT_TRUE(fs::exists(dir + "/LOCK"));
  // The lock file carries the holder's pid for the refusal message.
  const std::string stamp = ReadFileBytes(dir + "/LOCK");
  EXPECT_NE(stamp.find(std::to_string(::getpid())), std::string::npos);
}

TEST(Persist, SecondAcquireRefusedWhileHeldThenSucceedsAfterRelease) {
  const std::string dir = ScratchDir("contend");
  CacheDirLock a;
  ASSERT_TRUE(AcquireCacheDir(dir, &a).ok());
  CacheDirLock b;
  const Status st = AcquireCacheDir(dir, &b);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  // The refusal names the holder.
  EXPECT_NE(st.ToString().find(std::to_string(::getpid())), std::string::npos)
      << st.ToString();
  a.Release();
  EXPECT_FALSE(a.held());
  EXPECT_TRUE(AcquireCacheDir(dir, &b).ok());
}

TEST(Persist, AcquireRejectsPathBlockedByRegularFile) {
  const std::string parent = ScratchDir("blocked");
  const std::string file = parent + "/not_a_dir";
  WriteFileBytes(file, "occupied");
  CacheDirLock lock;
  const Status st = AcquireCacheDir(file, &lock);
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(lock.held());
}

// ------------------------------------------------------------ round trip --

TEST(Persist, FlushAndRecoverRoundTripBitwise) {
  const std::string dir = ScratchDir("roundtrip");
  const std::vector<Entry> es = SampleEntries(8);
  {
    CachePersister p(Opts(dir));
    ASSERT_TRUE(p.Start().ok());
    for (const Entry& e : es) p.Enqueue(e.kind, e.digest, e.key, e.value);
    const PersistStats mid = p.stats();
    EXPECT_EQ(mid.flush_backlog, 8u);
    ASSERT_TRUE(p.FlushNow().ok());
    const PersistStats after = p.stats();
    EXPECT_EQ(after.entries_flushed, 8u);
    EXPECT_EQ(after.flush_backlog, 0u);
    p.Stop();
  }
  const auto truth = Truth(es);
  const Replay r = RecoverAll(dir, &truth);
  EXPECT_EQ(r.loaded.size(), es.size());
  EXPECT_EQ(r.stats.segments_loaded, 1u);
  EXPECT_EQ(r.stats.entries_loaded, es.size());
  EXPECT_EQ(r.stats.records_corrupt, 0u);
  EXPECT_EQ(r.stats.digest_dropped, 0u);
}

TEST(Persist, RestartContinuesSegmentSequence) {
  const std::string dir = ScratchDir("sequence");
  const std::vector<Entry> es = SampleEntries(4);
  {
    CachePersister p(Opts(dir));
    ASSERT_TRUE(p.Start().ok());
    p.Enqueue(es[0].kind, es[0].digest, es[0].key, es[0].value);
    p.Enqueue(es[1].kind, es[1].digest, es[1].key, es[1].value);
    ASSERT_TRUE(p.FlushNow().ok());
    p.Stop();
  }
  {
    // A restarted persister must append fresh segments, never overwrite
    // the ones recovery still needs.
    CachePersister p(Opts(dir));
    ASSERT_TRUE(p.Start().ok());
    p.Enqueue(es[2].kind, es[2].digest, es[2].key, es[2].value);
    p.Enqueue(es[3].kind, es[3].digest, es[3].key, es[3].value);
    ASSERT_TRUE(p.FlushNow().ok());
    p.Stop();
  }
  const auto truth = Truth(es);
  const Replay r = RecoverAll(dir, &truth);
  EXPECT_EQ(r.loaded.size(), 4u);
  EXPECT_EQ(r.stats.segments_loaded, 2u);
}

TEST(Persist, DigestMismatchIsTypedNotCorrupt) {
  const std::string dir = ScratchDir("digestdrop");
  const std::vector<Entry> es = SampleEntries(6);
  WriteOneSegment(dir, es);
  CachePersister p(Opts(dir));
  ASSERT_TRUE(p.Start().ok());
  int offered = 0;
  p.Recover([&](CacheKind, const Hash128&, const Hash128&, const std::string&) {
    // Model changed across the restart: the registry rejects every entry.
    ++offered;
    return CachePersister::Recovered::kDigestMismatch;
  });
  const PersistStats s = p.stats();
  EXPECT_EQ(offered, 6);
  EXPECT_EQ(s.digest_dropped, 6u);
  EXPECT_EQ(s.entries_loaded, 0u);
  EXPECT_EQ(s.records_corrupt, 0u);
  p.Stop();
}

TEST(Persist, EnqueueBoundDropsOldest) {
  const std::string dir = ScratchDir("bound");
  PersistOptions o = Opts(dir);
  o.max_pending = 3;
  CachePersister p(o);
  ASSERT_TRUE(p.Start().ok());
  const std::vector<Entry> es = SampleEntries(8);
  for (const Entry& e : es) p.Enqueue(e.kind, e.digest, e.key, e.value);
  EXPECT_EQ(p.stats().flush_backlog, 3u);
  ASSERT_TRUE(p.FlushNow().ok());
  p.Stop();
  const auto truth = Truth(es);
  const Replay r = RecoverAll(dir, &truth);
  ASSERT_EQ(r.loaded.size(), 3u);
  // The *newest* three survived.
  for (const Entry& e : r.loaded) EXPECT_GE(e.key.hi, 105u);
}

TEST(Persist, RetentionDeletesOldestSegments) {
  const std::string dir = ScratchDir("retention");
  PersistOptions o = Opts(dir);
  o.max_segments = 2;
  CachePersister p(o);
  ASSERT_TRUE(p.Start().ok());
  const std::vector<Entry> es = SampleEntries(6);
  for (const Entry& e : es) {
    p.Enqueue(e.kind, e.digest, e.key, e.value);
    ASSERT_TRUE(p.FlushNow().ok());  // one segment per entry
  }
  p.Stop();
  int segments = 0;
  for (const auto& de : fs::directory_iterator(dir)) {
    if (de.path().extension() == ".m3c") ++segments;
  }
  EXPECT_EQ(segments, 2);
  const auto truth = Truth(es);
  const Replay r = RecoverAll(dir, &truth);
  EXPECT_EQ(r.loaded.size(), 2u);  // newest two
}

// -------------------------------------------------- corruption tolerance --

TEST(PersistRecovery, TruncationAtEveryOffsetNeverCrashesOrServesCorrupt) {
  const std::string src_dir = ScratchDir("trunc_src");
  const std::vector<Entry> es = SampleEntries(3);
  const std::string seg = WriteOneSegment(src_dir, es);
  const std::string bytes = ReadFileBytes(seg);
  ASSERT_GT(bytes.size(), 0u);
  const auto truth = Truth(es);

  const std::string cut_dir = ScratchDir("trunc_cut");
  const std::string cut = cut_dir + "/" + fs::path(seg).filename().string();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    WriteFileBytes(cut, bytes.substr(0, len));
    const Replay r = RecoverAll(cut_dir, &truth);  // asserts bitwise inside
    EXPECT_LE(r.loaded.size(), es.size()) << "len=" << len;
    if (len < bytes.size()) {
      // Something was lost: either fewer entries loaded or a typed
      // corruption counter fired — never a silent full recovery.
      EXPECT_TRUE(r.loaded.size() < es.size() || r.stats.records_corrupt > 0)
          << "len=" << len;
    }
  }
}

TEST(PersistRecovery, SingleBitFlipAtEveryByteNeverCrashesOrServesCorrupt) {
  const std::string src_dir = ScratchDir("flip_src");
  const std::vector<Entry> es = SampleEntries(3);
  const std::string seg = WriteOneSegment(src_dir, es);
  const std::string bytes = ReadFileBytes(seg);
  const auto truth = Truth(es);

  const std::string flip_dir = ScratchDir("flip_cut");
  const std::string flipped_path = flip_dir + "/" + fs::path(seg).filename().string();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string flipped = bytes;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x01);
    WriteFileBytes(flipped_path, flipped);
    // RecoverAll's truth check is the core assertion: every record that
    // survives the CRC + value-hash ladder is bitwise one we wrote.
    const Replay r = RecoverAll(flip_dir, &truth);
    EXPECT_LE(r.loaded.size(), es.size()) << "flip at byte " << i;
  }
}

TEST(PersistRecovery, HostileLengthFieldSkipsRecordAndResyncs) {
  const std::string src_dir = ScratchDir("hostile_src");
  const std::vector<Entry> es = SampleEntries(1);
  const std::string seg = WriteOneSegment(src_dir, es);
  const std::string bytes = ReadFileBytes(seg);
  constexpr std::size_t kHeader = 8;  // segment magic + format version
  ASSERT_GT(bytes.size(), kHeader);

  // Segment layout: header | hostile record (wild length) | the real record.
  std::string hostile(bytes.substr(0, kHeader));
  const std::uint32_t magic = 0x4d335243u;  // record magic
  const std::uint32_t wild_len = 0xFFFFFFF0u;
  const std::uint32_t junk_crc = 0xDEADBEEFu;
  hostile.append(reinterpret_cast<const char*>(&magic), 4);
  hostile.append(reinterpret_cast<const char*>(&wild_len), 4);
  hostile.append(reinterpret_cast<const char*>(&junk_crc), 4);
  hostile += bytes.substr(kHeader);

  const std::string dir = ScratchDir("hostile");
  WriteFileBytes(dir + "/" + fs::path(seg).filename().string(), hostile);
  const auto truth = Truth(es);
  const Replay r = RecoverAll(dir, &truth);
  // The wild length must not be trusted (it would claim ~4 GiB): the reader
  // counts it corrupt and resyncs to the genuine record behind it.
  EXPECT_EQ(r.loaded.size(), 1u);
  EXPECT_GE(r.stats.records_corrupt, 1u);
}

TEST(PersistRecovery, GarbageSegmentSkippedWhole) {
  const std::string dir = ScratchDir("garbage");
  WriteFileBytes(dir + "/seg-00000042.m3c", "this is not a segment at all");
  const Replay r = RecoverAll(dir, nullptr);
  EXPECT_TRUE(r.loaded.empty());
  EXPECT_EQ(r.stats.segments_loaded, 0u);
  EXPECT_GE(r.stats.records_corrupt, 1u);
}

// --------------------------------------------------------- fault injection --

TEST(Persist, WriteFaultFailsFlushTypedThenRecovers) {
  FaultGuard guard;
  const std::string dir = ScratchDir("writefault");
  CachePersister p(Opts(dir));
  ASSERT_TRUE(p.Start().ok());
  const std::vector<Entry> es = SampleEntries(2);
  for (const Entry& e : es) p.Enqueue(e.kind, e.digest, e.key, e.value);

  FaultRegistry::Instance().Arm(kPersistWriteFaultSite);
  EXPECT_FALSE(p.FlushNow().ok());
  const PersistStats failed = p.stats();
  EXPECT_GE(failed.flush_failures, 1u);
  EXPECT_EQ(failed.entries_flushed, 0u);
  EXPECT_EQ(failed.flush_backlog, 2u);  // batch re-queued, nothing lost

  FaultRegistry::Instance().Reset();
  EXPECT_TRUE(p.FlushNow().ok());
  EXPECT_EQ(p.stats().entries_flushed, 2u);
  p.Stop();

  const auto truth = Truth(es);
  EXPECT_EQ(RecoverAll(dir, &truth).loaded.size(), 2u);
}

TEST(Persist, ReadFaultCountsSegmentCorruptNeverThrows) {
  FaultGuard guard;
  const std::string dir = ScratchDir("readfault");
  WriteOneSegment(dir, SampleEntries(2));
  FaultRegistry::Instance().Arm(kPersistReadFaultSite);
  CachePersister p(Opts(dir));
  ASSERT_TRUE(p.Start().ok());
  int offered = 0;
  p.Recover([&](CacheKind, const Hash128&, const Hash128&, const std::string&) {
    ++offered;
    return CachePersister::Recovered::kLoaded;
  });
  EXPECT_EQ(offered, 0);
  EXPECT_GE(p.stats().records_corrupt, 1u);
  p.Stop();
}

// ------------------------------------------------------------ concurrency --

TEST(PersistConcurrency, EnqueueFlushStatsRecoverRaceFreely) {
  const std::string dir = ScratchDir("race");
  PersistOptions o = Opts(dir);
  o.flush_interval_seconds = 0.005;  // flusher actively racing
  CachePersister p(o);
  ASSERT_TRUE(p.Start().ok());

  constexpr int kPerThread = 200;
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&p, t] {
      for (int i = 0; i < kPerThread; ++i) {
        p.Enqueue(CacheKind::kPath, K(1, 2),
                  K(static_cast<std::uint64_t>(t), static_cast<std::uint64_t>(i)),
                  "v" + std::to_string(t) + "." + std::to_string(i));
      }
    });
  }
  threads.emplace_back([&p, &done] {
    while (!done.load()) {
      (void)p.FlushNow();
      (void)p.stats();
    }
  });
  // Recovery concurrent with enqueue/flush (the serving-while-recovering
  // configuration): must not race or double-replay in-flight segments.
  threads.emplace_back([&p] {
    p.Recover([](CacheKind, const Hash128&, const Hash128&, const std::string&) {
      return CachePersister::Recovered::kLoaded;
    });
  });
  threads[0].join();
  threads[1].join();
  done.store(true);
  threads[2].join();
  threads[3].join();
  ASSERT_TRUE(p.FlushNow().ok());
  p.Stop();

  const Replay r = RecoverAll(dir, nullptr);
  EXPECT_EQ(r.loaded.size(), 2u * kPerThread);
  EXPECT_EQ(r.stats.records_corrupt, 0u);
}

// ------------------------------------------------------ service-level E2E --

M3ModelConfig SmallModel() {
  M3ModelConfig mcfg;
  mcfg.d_model = 32;
  mcfg.num_layers = 1;
  mcfg.ff_dim = 64;
  mcfg.mlp_hidden = 64;
  return mcfg;
}

std::string SmallCheckpoint() {
  static const std::string path = [] {
    const std::string p = ::testing::TempDir() + "/persist_small_model.ckpt";
    M3Model model(SmallModel());
    model.Save(p);
    return p;
  }();
  return path;
}

ServiceOptions PersistServiceOptions(const std::string& cache_dir) {
  ServiceOptions so;
  so.model_config = SmallModel();
  so.num_workers = 2;
  so.threads_per_query = 1;
  so.cache_dir = cache_dir;
  so.cache_flush_interval_seconds = 60.0;  // tests flush explicitly
  return so;
}

QueryRequest SmallQuery(std::uint64_t wl_seed = 3) {
  const FatTree ft(FatTreeConfig::Small(2.0));
  const auto tm = TrafficMatrix::MatrixB(ft.num_racks(), ft.config().racks_per_pod);
  const auto sizes = MakeWebServer();
  WorkloadSpec wspec;
  wspec.num_flows = 300;
  wspec.seed = wl_seed;
  const std::vector<Flow> flows = GenerateWorkload(ft, tm, *sizes, wspec).flows;
  QueryRequest req;
  req.oversub = 2.0;
  req.num_paths = 3;
  req.flows.reserve(flows.size());
  for (const Flow& f : flows) {
    WireFlow wf;
    wf.id = f.id;
    wf.src_host = ft.HostIndexOf(f.src);
    wf.dst_host = ft.HostIndexOf(f.dst);
    wf.size = f.size;
    wf.arrival = f.arrival;
    wf.priority = f.priority;
    req.flows.push_back(wf);
  }
  return req;
}

void ExpectBitwiseEqual(const QueryResponse& a, const QueryResponse& b) {
  EXPECT_EQ(a.bucket_pct, b.bucket_pct);
  EXPECT_EQ(a.total_counts, b.total_counts);
  EXPECT_EQ(a.combined_pct, b.combined_pct);
}

TEST(PersistService, WarmRestartHitIsBitwiseIdenticalToRecompute) {
  const std::string dir = ScratchDir("service_warm");
  const QueryRequest req = SmallQuery();
  QueryResponse first;
  {
    EstimationService s1(PersistServiceOptions(dir));
    ASSERT_TRUE(s1.ReloadModel(SmallCheckpoint()).ok());
    ASSERT_TRUE(s1.Start().ok());
    s1.WaitForPersistRecovery();
    first = s1.Query(req);
    ASSERT_TRUE(first.status.ok()) << first.status.ToString();
    ASSERT_TRUE(s1.FlushPersistNow().ok());
    const ServerStatsWire st = s1.Stats();
    EXPECT_TRUE(st.persist_enabled);
    EXPECT_GE(st.persist_entries_flushed, 1u);
    s1.Stop();
  }  // destructor releases the dir lock

  // Cold reference: an independent service with no persistence computes
  // the same answer from scratch.
  {
    EstimationService cold(PersistServiceOptions(""));
    ASSERT_TRUE(cold.ReloadModel(SmallCheckpoint()).ok());
    ASSERT_TRUE(cold.Start().ok());
    const QueryResponse ref = cold.Query(req);
    ASSERT_TRUE(ref.status.ok());
    ExpectBitwiseEqual(first, ref);
    cold.Stop();
  }

  // Warm restart: same directory, same model. The query must be a
  // query-cache hit served from recovered state, bitwise identical.
  {
    EstimationService s2(PersistServiceOptions(dir));
    ASSERT_TRUE(s2.ReloadModel(SmallCheckpoint()).ok());
    ASSERT_TRUE(s2.Start().ok());
    s2.WaitForPersistRecovery();
    const ServerStatsWire st = s2.Stats();
    EXPECT_GE(st.persist_segments_loaded, 1u);
    EXPECT_GE(st.persist_entries_loaded, 1u);
    EXPECT_EQ(st.persist_records_corrupt, 0u);

    const std::uint64_t hits_before = st.query_cache[0];
    const QueryResponse warm = s2.Query(req);
    ASSERT_TRUE(warm.status.ok());
    ExpectBitwiseEqual(first, warm);
    EXPECT_EQ(s2.Stats().query_cache[0], hits_before + 1)
        << "warm-restart query should hit the recovered cache";
    s2.Stop();
  }
}

TEST(PersistService, ModelSwapAcrossRestartDropsRecoveredEntries) {
  const std::string dir = ScratchDir("service_swap");
  const QueryRequest req = SmallQuery();
  {
    EstimationService s1(PersistServiceOptions(dir));
    ASSERT_TRUE(s1.ReloadModel(SmallCheckpoint()).ok());
    ASSERT_TRUE(s1.Start().ok());
    ASSERT_TRUE(s1.Query(req).status.ok());
    ASSERT_TRUE(s1.FlushPersistNow().ok());
    s1.Stop();
  }
  // Restart with *different* weights: recovered entries must be dropped as
  // digest mismatches, not served.
  M3ModelConfig other = SmallModel();
  other.init_seed = 777;
  const std::string other_ckpt = testing::TempDir() + "/persist_other_model.ckpt";
  M3Model(other).Save(other_ckpt);

  EstimationService s2(PersistServiceOptions(dir));
  ASSERT_TRUE(s2.ReloadModel(other_ckpt).ok());
  ASSERT_TRUE(s2.Start().ok());
  s2.WaitForPersistRecovery();
  const ServerStatsWire st = s2.Stats();
  EXPECT_EQ(st.persist_entries_loaded, 0u);
  EXPECT_GE(st.persist_digest_dropped, 1u);
  const std::uint64_t hits_before = st.query_cache[0];
  ASSERT_TRUE(s2.Query(req).status.ok());
  EXPECT_EQ(s2.Stats().query_cache[0], hits_before) << "stale entry must not hit";
  s2.Stop();
}

TEST(PersistService, CorruptSegmentsOnBootAreSkippedAndServingContinues) {
  const std::string dir = ScratchDir("service_corrupt");
  WriteFileBytes(dir + "/seg-00000001.m3c", "garbage segment left by a crash");
  EstimationService s(PersistServiceOptions(dir));
  ASSERT_TRUE(s.ReloadModel(SmallCheckpoint()).ok());
  ASSERT_TRUE(s.Start().ok());
  s.WaitForPersistRecovery();
  const QueryResponse resp = s.Query(SmallQuery());
  EXPECT_TRUE(resp.status.ok()) << resp.status.ToString();
  const ServerStatsWire st = s.Stats();
  EXPECT_GE(st.persist_records_corrupt, 1u);
  EXPECT_EQ(st.persist_entries_loaded, 0u);
  s.Stop();
}

TEST(PersistService, SecondServiceRefusesSharedCacheDir) {
  const std::string dir = ScratchDir("service_shared");
  EstimationService s1(PersistServiceOptions(dir));
  ASSERT_TRUE(s1.ReloadModel(SmallCheckpoint()).ok());
  ASSERT_TRUE(s1.Start().ok());
  EstimationService s2(PersistServiceOptions(dir));
  ASSERT_TRUE(s2.ReloadModel(SmallCheckpoint()).ok());
  const Status st = s2.Start();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  s1.Stop();
}

// ----------------------------------------------------------- wire codecs --

TEST(Persist, PathEstimateValueCodecRoundTrips) {
  PathEstimate pe;
  for (std::size_t b = 0; b < pe.counts.size(); ++b) {
    pe.counts[b] = static_cast<double>(b) * 1.5;
    for (std::size_t q = 0; q < pe.pct[b].size(); ++q) {
      pe.pct[b][q] = static_cast<double>(b * 100 + q) * 0.25;
    }
  }
  const std::string blob = EncodePathEstimateValue(pe);
  StatusOr<PathEstimate> back = DecodePathEstimateValue(blob);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->counts, pe.counts);
  EXPECT_EQ(back->pct, pe.pct);
  EXPECT_FALSE(DecodePathEstimateValue(blob.substr(0, blob.size() - 1)).ok());
}

TEST(Persist, RouterPathValueCodecRoundTrips) {
  RouterPathValue v;
  v.model_version = 42;
  v.model_crc = 0xC0FFEEu;
  v.estimate.counts[0] = 7.0;
  v.estimate.pct[0][50] = 123.5;
  const std::string blob = EncodeRouterPathValue(v);
  StatusOr<RouterPathValue> back = DecodeRouterPathValue(blob);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->model_version, 42u);
  EXPECT_EQ(back->model_crc, 0xC0FFEEu);
  EXPECT_EQ(back->estimate.counts, v.estimate.counts);
  EXPECT_EQ(back->estimate.pct, v.estimate.pct);
  EXPECT_FALSE(DecodeRouterPathValue(std::string("junk")).ok());
}

}  // namespace
}  // namespace m3::serve
