// Tensor storage alignment and the thread-local tape arena.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

#include "ml/arena.h"
#include "ml/autograd.h"
#include "ml/tensor.h"
#include "util/rng.h"

namespace m3::ml {
namespace {

bool Aligned64(const float* p) {
  return reinterpret_cast<std::uintptr_t>(p) % 64 == 0;
}

TEST(TensorAlignment, StorageIs64ByteAligned) {
  // Odd sizes too: the allocator rounds the byte size up to a 64-byte
  // multiple, so consecutive allocations never share a cache line.
  for (int n : {1, 3, 8, 17, 64, 100, 1000}) {
    Tensor t(3, n);
    EXPECT_TRUE(Aligned64(t.data())) << "rows=3 cols=" << n;
    Rng rng(1);
    Tensor r = Tensor::Randn(n, 2, rng, 1.0f);
    EXPECT_TRUE(Aligned64(r.data())) << "randn n=" << n;
  }
}

TEST(TensorArena, ReusesReturnedBuffers) {
  TensorArena& arena = TensorArena::ThreadLocal();
  arena.Clear();
  const std::size_t alloc0 = arena.alloc_count();
  const std::size_t reuse0 = arena.reuse_count();

  Tensor a = arena.GetZeros(8, 16);
  EXPECT_EQ(arena.alloc_count(), alloc0 + 1);
  float* const buf = a.data();
  arena.Put(std::move(a));
  EXPECT_EQ(arena.pooled_buffers(), 1u);

  // Same shape comes back as the same buffer.
  Tensor b = arena.GetZeros(8, 16);
  EXPECT_EQ(arena.reuse_count(), reuse0 + 1);
  EXPECT_EQ(b.data(), buf);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_EQ(b.vec()[i], 0.0f);
  arena.Put(std::move(b));

  // A smaller request may reuse it (within the 2x slack bound)...
  Tensor c = arena.GetZeros(8, 8);
  EXPECT_EQ(arena.reuse_count(), reuse0 + 2);
  arena.Put(std::move(c));
  // ...but a tiny request must not pin the big buffer.
  Tensor d = arena.GetZeros(1, 4);
  EXPECT_EQ(arena.alloc_count(), alloc0 + 2);
  arena.Put(std::move(d));
  arena.Clear();
  EXPECT_EQ(arena.pooled_buffers(), 0u);
  EXPECT_EQ(arena.pooled_bytes(), 0u);
}

TEST(TensorArena, GetCopyCopiesValues) {
  TensorArena& arena = TensorArena::ThreadLocal();
  Rng rng(3);
  const Tensor src = Tensor::Randn(4, 5, rng, 1.0f);
  Tensor copy = arena.GetCopy(src);
  ASSERT_EQ(copy.rows(), 4);
  ASSERT_EQ(copy.cols(), 5);
  for (std::size_t i = 0; i < src.size(); ++i) EXPECT_EQ(copy.vec()[i], src.vec()[i]);
  arena.Put(std::move(copy));
}

TEST(TensorArena, SteadyStateGraphAllocatesNothing) {
  TensorArena& arena = TensorArena::ThreadLocal();
  arena.Clear();
  Rng rng(5);
  Parameter w("w", Tensor::Randn(6, 4, rng, 0.5f));
  Parameter b("b", Tensor::Randn(1, 4, rng, 0.5f));
  const Tensor x = Tensor::Randn(3, 6, rng, 1.0f);
  const Tensor t = Tensor::Randn(3, 4, rng, 1.0f);
  Tensor mask(3, 4);
  mask.Fill(1.0f);

  const auto run_episode = [&] {
    Graph g;
    const Var out = g.Linear(g.Input(x), g.Param(&w), g.Param(&b), Act::kRelu);
    const Var loss = g.MseLoss(out, g.Input(t), g.Input(mask));
    g.Backward(loss);
  };

  run_episode();  // warm-up: populates the pool via ~Graph
  const std::size_t allocs_after_warmup = arena.alloc_count();
  for (int i = 0; i < 10; ++i) run_episode();
  // Every subsequent identical episode is served entirely from the pool.
  EXPECT_EQ(arena.alloc_count(), allocs_after_warmup);
  arena.Clear();
}

TEST(TensorArena, ArenasAreThreadLocal) {
  TensorArena& main_arena = TensorArena::ThreadLocal();
  TensorArena* other = nullptr;
  std::thread th([&] { other = &TensorArena::ThreadLocal(); });
  th.join();
  ASSERT_NE(other, nullptr);
  EXPECT_NE(other, &main_arena);
}

TEST(TensorArena, PoolByteCapEvicts) {
  TensorArena arena_local;  // a private instance, not the thread-local one
  // Two buffers whose sum exceeds the cap: returning the second evicts
  // largest-first down to the budget.
  const int big_cols = static_cast<int>(TensorArena::kMaxPoolBytes / sizeof(float) / 2 + 64);
  Tensor a = arena_local.GetZeros(1, big_cols);
  Tensor b = arena_local.GetZeros(2, big_cols);
  arena_local.Put(std::move(a));
  arena_local.Put(std::move(b));
  EXPECT_LE(arena_local.pooled_bytes(), TensorArena::kMaxPoolBytes);
}

}  // namespace
}  // namespace m3::ml
