// Direct unit tests of the congestion-control modules, exercising the
// control laws without the full simulator.
#include <gtest/gtest.h>

#include "pktsim/cc.h"
#include "pktsim/event_queue.h"
#include "pktsim/switch.h"
#include "util/parallel.h"

namespace m3 {
namespace {

CcContext MakeCtx() {
  CcContext ctx;
  ctx.nic_rate = GbpsToBpns(10.0);
  ctx.base_rtt = 20 * kUs;
  ctx.bdp = static_cast<Bytes>(ctx.nic_rate * static_cast<double>(ctx.base_rtt));
  return ctx;
}

NetConfig BaseCfg(CcType cc) {
  NetConfig cfg;
  cfg.cc = cc;
  return cfg;
}

// ------------------------------------------------------------------ DCTCP ---

TEST(CcDctcp, StartsAtInitWindowAndIsWindowOnly) {
  NetConfig cfg = BaseCfg(CcType::kDctcp);
  cfg.init_window = 20 * kKB;
  auto cc = MakeDctcp(cfg, MakeCtx());
  EXPECT_DOUBLE_EQ(cc->cwnd(), 20e3);
  EXPECT_EQ(cc->rate(), kNoPacing);
}

TEST(CcDctcp, SlowStartDoublesPerWindow) {
  NetConfig cfg = BaseCfg(CcType::kDctcp);
  cfg.init_window = 10 * kKB;
  auto cc = MakeDctcp(cfg, MakeCtx());
  // Ack a full window without marks: cwnd should roughly double.
  for (int i = 0; i < 10; ++i) cc->OnAck(1000, false, 20 * kUs, 0.0, i * 1000);
  EXPECT_NEAR(cc->cwnd(), 20e3, 1e3);
}

TEST(CcDctcp, MarkedEpochCutsWindowByAlphaHalf) {
  NetConfig cfg = BaseCfg(CcType::kDctcp);
  cfg.init_window = 16 * kKB;
  auto cc = MakeDctcp(cfg, MakeCtx());
  // Persistent full marking: alpha EWMA builds toward 1 over epochs, and
  // the multiplicative decrease eventually dominates additive increase.
  const double before = cc->cwnd();
  for (int i = 0; i < 400; ++i) cc->OnAck(1000, true, 20 * kUs, 0.0, i * 1000);
  EXPECT_LT(cc->cwnd(), before);
  // Never below one MTU.
  for (int i = 0; i < 2000; ++i) cc->OnAck(1000, true, 20 * kUs, 0.0, i * 1000);
  EXPECT_GE(cc->cwnd(), 1000.0);
}

TEST(CcDctcp, UnmarkedEpochsDoNotShrink) {
  NetConfig cfg = BaseCfg(CcType::kDctcp);
  auto cc = MakeDctcp(cfg, MakeCtx());
  double prev = cc->cwnd();
  for (int i = 0; i < 200; ++i) {
    cc->OnAck(1000, false, 20 * kUs, 0.0, i * 1000);
    EXPECT_GE(cc->cwnd(), prev);
    prev = cc->cwnd();
  }
}

TEST(CcDctcp, TimeoutCollapsesToOneMtu) {
  NetConfig cfg = BaseCfg(CcType::kDctcp);
  auto cc = MakeDctcp(cfg, MakeCtx());
  cc->OnTimeout(0);
  EXPECT_DOUBLE_EQ(cc->cwnd(), 1000.0);
}

// ------------------------------------------------------------------ DCQCN ---

TEST(CcDcqcn, StartsAtLineRate) {
  auto cc = MakeDcqcn(BaseCfg(CcType::kDcqcn), MakeCtx());
  EXPECT_DOUBLE_EQ(cc->rate(), GbpsToBpns(10.0));
}

TEST(CcDcqcn, CnpCutsRateAndRecoveryRestoresIt) {
  auto cc = MakeDcqcn(BaseCfg(CcType::kDcqcn), MakeCtx());
  Ns now = 1 * kMs;
  cc->OnAck(1000, true, 20 * kUs, 0.0, now);  // CNP
  const double after_cut = cc->rate();
  EXPECT_LT(after_cut, GbpsToBpns(10.0));
  // Unmarked ACKs over several timer periods: fast recovery raises rate.
  for (int i = 1; i <= 20; ++i) {
    now += 55 * kUs;
    cc->OnAck(1000, false, 20 * kUs, 0.0, now);
  }
  EXPECT_GT(cc->rate(), after_cut);
  EXPECT_LE(cc->rate(), GbpsToBpns(10.0) + 1e-12);
}

TEST(CcDcqcn, CnpReactionIsRateLimited) {
  auto cc = MakeDcqcn(BaseCfg(CcType::kDcqcn), MakeCtx());
  cc->OnAck(1000, true, 20 * kUs, 0.0, 1 * kMs);
  const double r1 = cc->rate();
  // Second mark 10us later is inside the CNP interval: no further cut.
  cc->OnAck(1000, true, 20 * kUs, 0.0, 1 * kMs + 10 * kUs);
  EXPECT_DOUBLE_EQ(cc->rate(), r1);
  // A mark after 50us cuts again.
  cc->OnAck(1000, true, 20 * kUs, 0.0, 1 * kMs + 60 * kUs);
  EXPECT_LT(cc->rate(), r1);
}

// ----------------------------------------------------------------- TIMELY ---

TEST(CcTimely, LowRttIncreasesRate) {
  NetConfig cfg = BaseCfg(CcType::kTimely);
  cfg.timely_tlow = 50 * kUs;
  auto cc = MakeTimely(cfg, MakeCtx());
  cc->OnTimeout(0);  // knock the rate below line rate first
  const double start = cc->rate();
  for (int i = 0; i < 10; ++i) cc->OnAck(1000, false, 20 * kUs, 0.0, i * 1000);
  EXPECT_GT(cc->rate(), start);
}

TEST(CcTimely, HighRttDecreasesRateProportionally) {
  NetConfig cfg = BaseCfg(CcType::kTimely);
  cfg.timely_thigh = 120 * kUs;
  auto cc = MakeTimely(cfg, MakeCtx());
  const double start = cc->rate();
  cc->OnAck(1000, false, 100 * kUs, 0.0, 0);  // prime prev_rtt
  cc->OnAck(1000, false, 400 * kUs, 0.0, 1000);
  EXPECT_LT(cc->rate(), start);
}

TEST(CcTimely, RisingGradientInBandDecreases) {
  NetConfig cfg = BaseCfg(CcType::kTimely);
  cfg.timely_tlow = 50 * kUs;
  cfg.timely_thigh = 200 * kUs;
  auto cc = MakeTimely(cfg, MakeCtx());
  // RTTs inside [Tlow, Thigh] but steeply rising.
  Ns rtt = 60 * kUs;
  cc->OnAck(1000, false, rtt, 0.0, 0);
  const double start = cc->rate();
  for (int i = 1; i <= 8; ++i) {
    rtt += 15 * kUs;
    cc->OnAck(1000, false, rtt, 0.0, i * 1000);
  }
  EXPECT_LT(cc->rate(), start);
}

// ------------------------------------------------------------------- HPCC ---

TEST(CcHpcc, HighUtilizationShrinksWindow) {
  NetConfig cfg = BaseCfg(CcType::kHpcc);
  cfg.init_window = 20 * kKB;
  cfg.hpcc_eta = 0.9;
  auto cc = MakeHpcc(cfg, MakeCtx());
  const double start = cc->cwnd();
  cc->OnAck(1000, false, 20 * kUs, /*int_u=*/2.0, 0);
  EXPECT_LT(cc->cwnd(), start);
}

TEST(CcHpcc, LowUtilizationGrowsWindowTowardCap) {
  NetConfig cfg = BaseCfg(CcType::kHpcc);
  cfg.init_window = 10 * kKB;
  auto cc = MakeHpcc(cfg, MakeCtx());
  Ns now = 0;
  for (int i = 0; i < 200; ++i) {
    now += 25 * kUs;  // > base_rtt so the reference window tracks
    cc->OnAck(1000, false, 20 * kUs, /*int_u=*/0.1, now);
  }
  const CcContext ctx = MakeCtx();
  EXPECT_GT(cc->cwnd(), 10e3);
  EXPECT_LE(cc->cwnd(), 2.0 * static_cast<double>(ctx.bdp) + 1.0);
}

TEST(CcHpcc, ConvergesNearEtaEquilibrium) {
  NetConfig cfg = BaseCfg(CcType::kHpcc);
  cfg.hpcc_eta = 0.9;
  auto cc = MakeHpcc(cfg, MakeCtx());
  // Feeding u == eta repeatedly should hold the window roughly steady
  // (additive probe aside).
  Ns now = 0;
  for (int i = 0; i < 50; ++i) {
    now += 25 * kUs;
    cc->OnAck(1000, false, 20 * kUs, 0.9, now);
  }
  const double w1 = cc->cwnd();
  for (int i = 0; i < 50; ++i) {
    now += 25 * kUs;
    cc->OnAck(1000, false, 20 * kUs, 0.9, now);
  }
  EXPECT_NEAR(cc->cwnd(), w1, 0.2 * w1);
}

TEST(CcHpcc, PacesAtWindowOverRtt) {
  NetConfig cfg = BaseCfg(CcType::kHpcc);
  auto cc = MakeHpcc(cfg, MakeCtx());
  EXPECT_NEAR(cc->rate(), cc->cwnd() / static_cast<double>(MakeCtx().base_rtt), 1e-9);
}

// ----------------------------------------------------------- factory etc. ---

TEST(CcFactory, DispatchesOnConfig) {
  const CcContext ctx = MakeCtx();
  EXPECT_EQ(MakeCc(BaseCfg(CcType::kDctcp), ctx)->rate(), kNoPacing);
  EXPECT_NE(MakeCc(BaseCfg(CcType::kDcqcn), ctx)->rate(), kNoPacing);
  EXPECT_NE(MakeCc(BaseCfg(CcType::kTimely), ctx)->rate(), kNoPacing);
  EXPECT_NE(MakeCc(BaseCfg(CcType::kHpcc), ctx)->rate(), kNoPacing);
}

// ----------------------------------------------------------- event queue ---

TEST(EventQueue, OrdersByTimeThenFifo) {
  EventQueue q;
  q.Push(100, EvType::kPace, 1);
  q.Push(50, EvType::kPace, 2);
  q.Push(100, EvType::kPace, 3);  // same time as the first: FIFO tie-break
  EXPECT_EQ(q.Pop().a, 2);
  EXPECT_EQ(q.Pop().a, 1);
  EXPECT_EQ(q.Pop().a, 3);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueue, CountsPushes) {
  EventQueue q;
  for (int i = 0; i < 10; ++i) q.Push(i, EvType::kRto, i);
  EXPECT_EQ(q.total_pushed(), 10u);
  EXPECT_EQ(q.size(), 10u);
}

// ----------------------------------------------------------- switch utils ---

TEST(SwitchUtil, DcqcnMarkingIsProbabilisticBetweenThresholds) {
  NetConfig cfg = BaseCfg(CcType::kDcqcn);
  cfg.dcqcn_kmin = 20 * kKB;
  cfg.dcqcn_kmax = 100 * kKB;
  Rng rng(3);
  int marks_mid = 0, marks_below = 0, marks_above = 0;
  for (int i = 0; i < 2000; ++i) {
    marks_below += ShouldMarkEcn(cfg, 10 * kKB, rng);
    marks_mid += ShouldMarkEcn(cfg, 60 * kKB, rng);
    marks_above += ShouldMarkEcn(cfg, 150 * kKB, rng);
  }
  EXPECT_EQ(marks_below, 0);
  EXPECT_GT(marks_mid, 50);      // ~10% of 2000
  EXPECT_LT(marks_mid, 400);
  EXPECT_EQ(marks_above, 2000);  // always above Kmax
}

TEST(SwitchUtil, HpccUtilizationCombinesQueueAndThroughput) {
  Port port;
  port.qbytes = 12500;  // = rate * 10us at 10G
  port.util_ewma = 0.5;
  EXPECT_NEAR(HpccUtilization(port, GbpsToBpns(10.0)), 1.5, 1e-9);
}

TEST(SwitchUtil, PortUtilEwmaTracksBusyLink) {
  Port port;
  const Bpns rate = GbpsToBpns(10.0);
  Ns now = 0;
  // Saturate: back-to-back 1048B frames, each 838.4ns.
  for (int i = 0; i < 1000; ++i) {
    now += 839;
    UpdatePortUtil(port, rate, 1048, now);
  }
  EXPECT_GT(port.util_ewma, 0.8);
}

// --------------------------------------------------------------- parallel ---

TEST(Parallel, RunsAllIndicesOnce) {
  std::vector<std::atomic<int>> counts(100);
  ParallelFor(100, [&](std::size_t i) { counts[i]++; }, 4);
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(Parallel, PropagatesExceptions) {
  EXPECT_THROW(
      ParallelFor(10, [](std::size_t i) {
        if (i == 5) throw std::runtime_error("boom");
      }, 3),
      std::runtime_error);
}

TEST(Parallel, HandlesZeroAndSingle) {
  int ran = 0;
  ParallelFor(0, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran, 0);
  ParallelFor(1, [&](std::size_t) { ++ran; }, 8);
  EXPECT_EQ(ran, 1);
}

}  // namespace
}  // namespace m3
