#include <gtest/gtest.h>

#include <algorithm>

#include "topo/fat_tree.h"
#include "util/stats.h"
#include "workload/arrivals.h"
#include "workload/generator.h"
#include "workload/size_dist.h"
#include "workload/traffic_matrix.h"

namespace m3 {
namespace {

// ------------------------------------------------------------ size dist ---

TEST(SizeDist, ProductionDistsSampleWithinSupport) {
  Rng rng(1);
  for (const char* name : {"CacheFollower", "WebServer", "Hadoop"}) {
    auto d = MakeProductionDist(name);
    for (int i = 0; i < 5000; ++i) {
      const Bytes s = d->Sample(rng);
      EXPECT_GE(s, 1);
      EXPECT_LE(s, 10 * kMB);
    }
  }
}

TEST(SizeDist, ProductionMeansAreOrdered) {
  // Hadoop and CacheFollower carry more large-flow mass than WebServer.
  EXPECT_GT(MakeHadoop()->Mean(), MakeWebServer()->Mean());
  EXPECT_GT(MakeCacheFollower()->Mean(), MakeWebServer()->Mean());
}

TEST(SizeDist, UnknownProductionNameThrows) {
  EXPECT_THROW(MakeProductionDist("NoSuch"), std::invalid_argument);
}

class ParametricMeanTest
    : public ::testing::TestWithParam<std::tuple<ParametricFamily, double>> {};

TEST_P(ParametricMeanTest, SampleMeanMatchesTheta) {
  const auto [family, theta] = GetParam();
  auto d = MakeParametric(family, theta);
  EXPECT_NEAR(d->Mean(), theta, theta * 0.01);
  Rng rng(99);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(d->Sample(rng));
  // Pareto(alpha=2) has infinite variance: give it a looser band.
  const double tol = family == ParametricFamily::kPareto ? 0.10 : 0.03;
  EXPECT_NEAR(sum / n / theta, 1.0, tol);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, ParametricMeanTest,
    ::testing::Combine(::testing::Values(ParametricFamily::kPareto,
                                         ParametricFamily::kExponential,
                                         ParametricFamily::kGaussian,
                                         ParametricFamily::kLogNormal),
                       ::testing::Values(5000.0, 20000.0, 50000.0)));

// -------------------------------------------------------------- arrivals ---

TEST(Arrivals, NormalizedSpanAndMonotonicity) {
  Rng rng(5);
  const auto t = NormalizedLogNormalArrivals(1000, 1.0, rng);
  ASSERT_EQ(t.size(), 1000u);
  EXPECT_TRUE(std::is_sorted(t.begin(), t.end()));
  EXPECT_NEAR(t.back(), 1.0, 1e-9);
  EXPECT_GE(t.front(), 0.0);
}

TEST(Arrivals, HigherSigmaIsBurstier) {
  Rng rng1(7), rng2(7);
  const auto low = ScaleArrivals(NormalizedLogNormalArrivals(20000, 1.0, rng1), kSec);
  const auto high = ScaleArrivals(NormalizedLogNormalArrivals(20000, 2.0, rng2), kSec);
  EXPECT_GT(GapCoefficientOfVariation(high), GapCoefficientOfVariation(low) * 1.5);
}

TEST(Arrivals, ScaleArrivalsBounds) {
  Rng rng(9);
  const auto t = ScaleArrivals(NormalizedLogNormalArrivals(100, 1.5, rng), 500 * kMs);
  EXPECT_LE(t.back(), 500 * kMs);
  EXPECT_GE(t.front(), 0);
}

TEST(Arrivals, DiurnalDepthZeroMatchesStationary) {
  Rng r1(13), r2(13);
  const auto stationary = NormalizedLogNormalArrivals(500, 1.2, r1);
  const auto diurnal = NormalizedDiurnalArrivals(500, 1.2, 0.0, 2.0, r2);
  ASSERT_EQ(stationary.size(), diurnal.size());
  for (std::size_t i = 0; i < stationary.size(); ++i) {
    EXPECT_NEAR(diurnal[i], stationary[i], 1e-9);
  }
}

TEST(Arrivals, DiurnalModulationConcentratesArrivalsInPeaks) {
  Rng rng(15);
  // One full sine cycle: the rate peaks in the first half (sin > 0) and
  // dips in the second, so more than half the arrivals land early.
  const auto t = NormalizedDiurnalArrivals(20000, 1.0, 0.9, 1.0, rng);
  EXPECT_TRUE(std::is_sorted(t.begin(), t.end()));
  int first_half = 0;
  for (double v : t) first_half += (v < 0.5);
  EXPECT_GT(first_half, 11500);  // well above 50%
  EXPECT_GE(t.front(), 0.0);
  EXPECT_LE(t.back(), 1.0 + 1e-9);
}

TEST(Arrivals, DiurnalPreservesCount) {
  Rng rng(17);
  EXPECT_EQ(NormalizedDiurnalArrivals(321, 1.5, 0.5, 3.0, rng).size(), 321u);
}

// -------------------------------------------------------- traffic matrix ---

TEST(TrafficMatrix, DiagonalIsZeroAndSamplingAvoidsIt) {
  auto tm = TrafficMatrix::MatrixB(8, 4);
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const auto [s, d] = tm.SamplePair(rng);
    EXPECT_NE(s, d);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 8);
    EXPECT_GE(d, 0);
    EXPECT_LT(d, 8);
  }
}

TEST(TrafficMatrix, SkewOrderingCAB) {
  const int racks = 32, per_pod = 16;
  const double skew_a = TrafficMatrix::MatrixA(racks, per_pod).Top1PercentShare();
  const double skew_b = TrafficMatrix::MatrixB(racks, per_pod).Top1PercentShare();
  const double skew_c = TrafficMatrix::MatrixC(racks, per_pod).Top1PercentShare();
  EXPECT_GT(skew_c, skew_a);
  EXPECT_GT(skew_a, skew_b);
}

TEST(TrafficMatrix, MatrixAPrefersIntraPod) {
  auto tm = TrafficMatrix::MatrixA(32, 16);
  Rng rng(13);
  int intra = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto [s, d] = tm.SamplePair(rng);
    intra += (s / 16 == d / 16);
  }
  // ~15/31 of destination racks are intra-pod but carry 4x weight => well
  // over half of traffic should stay in-pod.
  EXPECT_GT(static_cast<double>(intra) / n, 0.55);
}

TEST(TrafficMatrix, SamplePairFollowsWeights) {
  TrafficMatrix tm("t", {{0, 1, 0}, {0, 0, 3}, {0, 0, 0}});
  Rng rng(17);
  int ab = 0, bc = 0;
  for (int i = 0; i < 40000; ++i) {
    const auto [s, d] = tm.SamplePair(rng);
    if (s == 0 && d == 1) ++ab;
    else if (s == 1 && d == 2) ++bc;
    else FAIL() << "sampled zero-weight pair " << s << "->" << d;
  }
  EXPECT_NEAR(static_cast<double>(bc) / ab, 3.0, 0.3);
}

TEST(TrafficMatrix, RejectsInvalidMatrices) {
  EXPECT_THROW(TrafficMatrix("x", {}), std::invalid_argument);
  EXPECT_THROW(TrafficMatrix("x", {{0, 1}, {1}}), std::invalid_argument);
  EXPECT_THROW(TrafficMatrix("x", {{0, -1}, {1, 0}}), std::invalid_argument);
  // All-zero after zeroing the diagonal.
  EXPECT_THROW(TrafficMatrix("x", {{5}}), std::invalid_argument);
}

// -------------------------------------------------------------- generator ---

TEST(Generator, ProducesRequestedFlowCountSortedByArrival) {
  const FatTree ft(FatTreeConfig::Small(2.0));
  const auto tm = TrafficMatrix::MatrixB(ft.num_racks(), ft.config().racks_per_pod);
  const auto sizes = MakeWebServer();
  WorkloadSpec spec;
  spec.num_flows = 2000;
  spec.seed = 3;
  const auto wl = GenerateWorkload(ft, tm, *sizes, spec);
  ASSERT_EQ(wl.flows.size(), 2000u);
  EXPECT_TRUE(std::is_sorted(wl.flows.begin(), wl.flows.end(),
                             [](const Flow& a, const Flow& b) { return a.arrival < b.arrival; }));
  for (std::size_t i = 0; i < wl.flows.size(); ++i) {
    EXPECT_EQ(wl.flows[i].id, static_cast<FlowId>(i));
    EXPECT_TRUE(ft.topo().ValidateRoute(wl.flows[i].src, wl.flows[i].dst, wl.flows[i].path));
  }
}

TEST(Generator, HitsTargetMaxLoad) {
  const FatTree ft(FatTreeConfig::Small(1.0));
  const auto tm = TrafficMatrix::MatrixB(ft.num_racks(), ft.config().racks_per_pod);
  const auto sizes = MakeCacheFollower();
  for (double load : {0.3, 0.6, 0.8}) {
    WorkloadSpec spec;
    spec.num_flows = 5000;
    spec.max_load = load;
    spec.seed = 11;
    const auto wl = GenerateWorkload(ft, tm, *sizes, spec);
    EXPECT_NEAR(wl.realized_max_load, load, load * 0.02) << "target " << load;
  }
}

TEST(Generator, DeterministicForSeed) {
  const FatTree ft(FatTreeConfig::Small(2.0));
  const auto tm = TrafficMatrix::MatrixA(ft.num_racks(), ft.config().racks_per_pod);
  const auto sizes = MakeHadoop();
  WorkloadSpec spec;
  spec.num_flows = 500;
  spec.seed = 21;
  const auto a = GenerateWorkload(ft, tm, *sizes, spec);
  const auto b = GenerateWorkload(ft, tm, *sizes, spec);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].size, b.flows[i].size);
    EXPECT_EQ(a.flows[i].arrival, b.flows[i].arrival);
    EXPECT_EQ(a.flows[i].path, b.flows[i].path);
  }
}

TEST(Generator, RejectsBadSpecs) {
  const FatTree ft(FatTreeConfig::Small(1.0));
  const auto tm = TrafficMatrix::MatrixB(ft.num_racks(), ft.config().racks_per_pod);
  const auto sizes = MakeWebServer();
  WorkloadSpec spec;
  spec.num_flows = 0;
  EXPECT_THROW(GenerateWorkload(ft, tm, *sizes, spec), std::invalid_argument);
  spec.num_flows = 10;
  spec.max_load = 1.5;
  EXPECT_THROW(GenerateWorkload(ft, tm, *sizes, spec), std::invalid_argument);
}

TEST(Generator, LinkLoadsConsistent) {
  const FatTree ft(FatTreeConfig::Small(2.0));
  const auto tm = TrafficMatrix::MatrixB(ft.num_racks(), ft.config().racks_per_pod);
  const auto sizes = MakeWebServer();
  WorkloadSpec spec;
  spec.num_flows = 1000;
  spec.max_load = 0.5;
  spec.seed = 31;
  const auto wl = GenerateWorkload(ft, tm, *sizes, spec);
  const auto loads = LinkLoads(ft.topo(), wl.flows, wl.duration);
  const double max_load = *std::max_element(loads.begin(), loads.end());
  EXPECT_DOUBLE_EQ(max_load, wl.realized_max_load);
  ASSERT_GE(wl.busiest_link, 0);
  EXPECT_DOUBLE_EQ(loads[static_cast<std::size_t>(wl.busiest_link)], max_load);
}

}  // namespace
}  // namespace m3
